package calcparser

import (
	"strings"
	"testing"
)

// sl replays a fixed token slice.
type sl struct {
	toks []Token
	pos  int
}

func (l *sl) Next() Token {
	if l.pos >= len(l.toks) {
		return Token{Kind: TokEOF}
	}
	t := l.toks[l.pos]
	l.pos++
	return t
}

func num(n string) Token   { return Token{Kind: TokNUM, Text: n} }
func id(s string) Token    { return Token{Kind: TokIDENT, Text: s} }
func op(kind int) Token    { return Token{Kind: kind} }
func toks(ts ...Token) *sl { return &sl{toks: ts} }

// evalReduce is a tiny interpreter over the generated production table.
func evalReduce(env map[string]int) func(int, []any) any {
	return func(prod int, parts []any) any {
		switch Productions[prod] {
		case "stmt → IDENT '=' expr ';'":
			env[parts[0].(string)] = parts[2].(int)
			return nil
		case "expr → expr '+' expr":
			return parts[0].(int) + parts[2].(int)
		case "expr → expr '*' expr":
			return parts[0].(int) * parts[2].(int)
		case "expr → expr '-' expr":
			return parts[0].(int) - parts[2].(int)
		case "expr → '-' expr":
			return -parts[1].(int)
		case "expr → '(' expr ')'":
			return parts[1]
		case "expr → NUM":
			return parts[0]
		case "expr → IDENT":
			return env[parts[0].(string)]
		default:
			if len(parts) > 0 {
				return parts[0]
			}
			return nil
		}
	}
}

func shiftVal(tok Token) any {
	if tok.Kind == TokNUM {
		n := 0
		for _, c := range tok.Text {
			n = n*10 + int(c-'0')
		}
		return n
	}
	return tok.Text
}

func TestGeneratedParserEvaluates(t *testing.T) {
	env := map[string]int{}
	// x = 1 + 2 * 3 ; y = x - (4) ;
	_, err := Parse(toks(
		id("x"), op(TokEq), num("1"), op(TokPlus), num("2"), op(TokStar), num("3"), op(TokSemi),
		id("y"), op(TokEq), id("x"), op(TokMinus), op(TokLParen), num("4"), op(TokRParen), op(TokSemi),
	), shiftVal, evalReduce(env))
	if err != nil {
		t.Fatal(err)
	}
	if env["x"] != 7 || env["y"] != 3 {
		t.Errorf("env = %v, want x=7 y=3", env)
	}
}

func TestGeneratedParserPrecedence(t *testing.T) {
	env := map[string]int{}
	// x = -2 * 3 ;  unary binds tighter: (-2)*3 = -6.
	_, err := Parse(toks(
		id("x"), op(TokEq), op(TokMinus), num("2"), op(TokStar), num("3"), op(TokSemi),
	), shiftVal, evalReduce(env))
	if err != nil {
		t.Fatal(err)
	}
	if env["x"] != -6 {
		t.Errorf("x = %d, want -6", env["x"])
	}
}

func TestGeneratedParserSyntaxError(t *testing.T) {
	// "x = ;" has no error production before ';'... actually the error
	// production IS "stmt : error ';'", so this recovers.  An input with
	// a bad token after all statements and no ';' cannot recover.
	_, err := Parse(toks(id("x"), op(TokEq)), shiftVal, nil)
	if err == nil {
		t.Fatal("expected syntax error")
	}
	serr, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("err = %T, want *SyntaxError", err)
	}
	if len(serr.Expected) == 0 {
		t.Error("expected-token list empty")
	}
	if !strings.Contains(serr.Error(), "syntax error") {
		t.Errorf("message = %q", serr.Error())
	}
}

func TestGeneratedParserRecovery(t *testing.T) {
	env := map[string]int{}
	// "x = 1 ; 3 3 ; y = 2 ;" — the middle statement goes wrong only at
	// its second token, so the first statement has already been reduced
	// (its lookahead, NUM, is a statement starter) before recovery
	// discards to the ';'.
	_, err := Parse(toks(
		id("x"), op(TokEq), num("1"), op(TokSemi),
		num("3"), num("3"), op(TokSemi),
		id("y"), op(TokEq), num("2"), op(TokSemi),
	), shiftVal, evalReduce(env))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if env["x"] != 1 || env["y"] != 2 {
		t.Errorf("env = %v; statements around the error must still execute", env)
	}
}

func TestRecoveryDiscardsUnreducedStatement(t *testing.T) {
	env := map[string]int{}
	// "x = 1 ; = ;" — the bad token '=' is NOT in the look-ahead set of
	// the finished first statement, so that statement sits unreduced on
	// the stack when the error fires and recovery pops it: its semantic
	// action never runs.  This is authentic yacc behaviour (default
	// reductions in compressed tables are what mask it in practice).
	_, err := Parse(toks(
		id("x"), op(TokEq), num("1"), op(TokSemi),
		op(TokEq), op(TokSemi),
		id("y"), op(TokEq), num("2"), op(TokSemi),
	), shiftVal, evalReduce(env))
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if _, ok := env["x"]; ok {
		t.Error("x was assigned although its statement was popped during recovery")
	}
	if env["y"] != 2 {
		t.Errorf("env = %v; the statement after the error must execute", env)
	}
}

func TestGeneratedParserPureRecognition(t *testing.T) {
	// nil callbacks: recognition only.
	if _, err := Parse(toks(num("1"), op(TokSemi)), nil, nil); err != nil {
		t.Errorf("recognition failed: %v", err)
	}
	if _, err := Parse(toks(Token{Kind: 999}), nil, nil); err == nil ||
		!strings.Contains(err.Error(), "invalid token kind") {
		t.Errorf("err = %v, want invalid token kind", err)
	}
}

func TestTokenNamesAligned(t *testing.T) {
	if TokenName[TokEOF] != "$end" || TokenName[TokNUM] != "NUM" ||
		TokenName[TokPlus] != "'+'" || TokenName[TokError] != "error" {
		t.Errorf("TokenName misaligned: %v", TokenName)
	}
}
