// A statement language for the generated-parser example: assignments
// and expression statements, with yacc error recovery at ';'.
%token NUM IDENT
%left '+' '-'
%left '*' '/'
%right UMINUS
%%
program : program stmt
        | stmt
        ;
stmt : IDENT '=' expr ';'
     | expr ';'
     | error ';'
     ;
expr : expr '+' expr
     | expr '-' expr
     | expr '*' expr
     | expr '/' expr
     | '-' expr %prec UMINUS
     | '(' expr ')'
     | NUM
     | IDENT
     ;
