GO ?= go

.PHONY: ci build vet test race benchsmoke smoke bench metrics lint-corpus

ci: build vet test race smoke benchsmoke lint-corpus

build:
	$(GO) build ./...

# Standard vet plus the repo's own checker: nilrecorder enforces the
# nil-receiver guard pattern on exported obs methods (it ignores every
# other package), speaking the -vettool protocol with stdlib only.
vet:
	$(GO) vet ./...
	$(GO) build -o bin/nilrecorder ./internal/analyzers/nilrecorder
	$(GO) vet -vettool=$(CURDIR)/bin/nilrecorder ./...

test:
	$(GO) test ./...

# The parallel driver is the one concurrent component; its tests assert
# serial/parallel result equality, so run them under the race detector.
race:
	$(GO) test -race ./internal/driver/...

# One-iteration pass over every benchmark: catches bit-rot in the bench
# code (and the alloc-regression gates' setup) without paying for real
# measurement.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Smoke-check the instrumented pipeline end to end: the metrics emitter
# exercises LR(0) construction, all look-ahead methods, table build and
# packing on the whole corpus.
smoke:
	$(GO) run ./cmd/lalrbench -quick -metrics-out /dev/null

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Gate the corpus on the grammar linter: every corpus grammar is linted
# against its registry-pinned conflict budget; any error-severity
# finding (new conflicts, budget drift, reads cycles, useless symbols
# promoted by -Werror) fails the build.
lint-corpus:
	$(GO) run ./cmd/grammarlint -Werror -severity=error

# Regenerate the committed metrics snapshot.
metrics:
	$(GO) run ./cmd/lalrbench -quick -metrics-out BENCH_core.json
