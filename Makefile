GO ?= go

.PHONY: ci build vet test race benchsmoke smoke bench metrics

ci: build vet test race smoke benchsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel driver is the one concurrent component; its tests assert
# serial/parallel result equality, so run them under the race detector.
race:
	$(GO) test -race ./internal/driver/...

# One-iteration pass over every benchmark: catches bit-rot in the bench
# code (and the alloc-regression gates' setup) without paying for real
# measurement.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Smoke-check the instrumented pipeline end to end: the metrics emitter
# exercises LR(0) construction, all look-ahead methods, table build and
# packing on the whole corpus.
smoke:
	$(GO) run ./cmd/lalrbench -quick -metrics-out /dev/null

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Regenerate the committed metrics snapshot.
metrics:
	$(GO) run ./cmd/lalrbench -quick -metrics-out BENCH_core.json
