GO ?= go

.PHONY: ci build vet test smoke bench metrics

ci: build vet test smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Smoke-check the instrumented pipeline end to end: the metrics emitter
# exercises LR(0) construction, all look-ahead methods, table build and
# packing on the whole corpus.
smoke:
	$(GO) run ./cmd/lalrbench -quick -metrics-out /dev/null

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Regenerate the committed metrics snapshot.
metrics:
	$(GO) run ./cmd/lalrbench -quick -metrics-out BENCH_core.json
