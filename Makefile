GO ?= go

.PHONY: ci build vet test race benchsmoke smoke serve-smoke guard-smoke telemetry-smoke frozen-smoke ambig-smoke cluster-smoke bench metrics lint-corpus

ci: build vet test race smoke serve-smoke benchsmoke guard-smoke telemetry-smoke frozen-smoke ambig-smoke cluster-smoke lint-corpus

build:
	$(GO) build ./...

# Standard vet plus the repo's own checkers (both speak the -vettool
# protocol with stdlib only): nilrecorder enforces the nil-receiver
# guard pattern on exported obs and telemetry methods; guardloop
# requires every potentially unbounded loop in the search and fixpoint
# engines (ambig, digraph, glr, treecount) to hit a guard.Budget
# checkpoint or carry an explicit //guardloop:ok waiver.
vet:
	$(GO) vet ./...
	$(GO) build -o bin/nilrecorder ./internal/analyzers/nilrecorder
	$(GO) vet -vettool=$(CURDIR)/bin/nilrecorder ./...
	$(GO) build -o bin/guardloop ./internal/analyzers/guardloop
	$(GO) vet -vettool=$(CURDIR)/bin/guardloop ./...

test:
	$(GO) test ./...

# The concurrent components — the parallel driver, the sharded
# response cache (singleflight, LRU under contention), the server's
# request handling, the shard-merged telemetry histograms, the parallel
# Digraph solve with its lock-free shared arena, the fanned prop
# read-off, the frozen store consulted from request goroutines, and the
# cluster peer layer (hedged fetches, breakers, async offers) — run
# under the race detector.
race:
	$(GO) test -race ./internal/driver/... ./internal/cache/... ./internal/server/... ./internal/telemetry/... ./internal/digraph/... ./internal/prop/... ./internal/frozen/... ./internal/ambig/... ./internal/cluster/...

# One-iteration pass over every benchmark: catches bit-rot in the bench
# code (and the alloc-regression gates' setup) without paying for real
# measurement.
benchsmoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Smoke-check the instrumented pipeline end to end: the metrics emitter
# exercises LR(0) construction, all look-ahead methods, table build and
# packing on the whole corpus.
smoke:
	$(GO) run ./cmd/lalrbench -quick -metrics-out /dev/null

# Serving smoke (DESIGN.md § 10): boot an in-process lalrd and drive
# the full serving story over real HTTP — cold request, cache hit with
# a byte-identical body, /metricz accounting, a 422 limit trip the
# server survives, clean drain-and-shutdown.
serve-smoke:
	$(GO) run ./cmd/lalrd -smoke

# Telemetry smoke (DESIGN.md § 11): boot an in-process lalrd and check
# the observability story over real HTTP — request-id echo, trace
# retrieval by id, Prometheus exposition through the strict validator,
# /metricz latency digests, build info, JSON access-log records.
telemetry-smoke:
	$(GO) run ./cmd/lalrd -telemetry-smoke

# Frozen-store smoke (DESIGN.md § 12): two lalrd lives on one store
# directory — the first analyzes cold and freezes the tables, the
# restart answers the same grammar with X-Repro-Cache: frozen, a
# byte-identical body and zero analysis phases in its trace.
frozen-smoke:
	$(GO) run ./cmd/lalrd -frozen-smoke

# Governance smoke (DESIGN.md § 9): the limit-trip, cancellation and
# fault-injection tests (the driver ones under -race), then a bounded
# corpus run of lalrbench — tight -max-states must abort with a typed
# guard error (nonzero exit) without -keep-going, and exit clean with
# it.
guard-smoke:
	$(GO) test -run 'TestAnalyze(CanonicalLimitTrip|LR0LimitTrip|PreCancelledContext|CancelMidRun|AllInjectedPanicIsolation|AllFailFastStops)|TestLintGoverned|FuzzAnalyze' .
	$(GO) test ./internal/guard/
	$(GO) test -race -run 'TestRunCollectErrorOrderDeterministic|TestRunFailFastCancelsRest|TestRunRecoversPanic' ./internal/driver/
	$(GO) build -o bin/lalrbench ./cmd/lalrbench
	./bin/lalrbench -quick -timeout 5s -max-states 64 -metrics-out /dev/null 2>bin/guard-smoke.err; \
		test $$? -ne 0 && grep -q 'guard:' bin/guard-smoke.err
	./bin/lalrbench -quick -timeout 5s -max-states 64 -keep-going -metrics-out /dev/null

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Ambiguity smoke (DESIGN.md § 13): the prover must reach both proven
# verdicts on the canonical pair — dangling-else is a true ambiguity
# (GL040, witness confirmed by both oracles), not-lalr is an LALR(1)
# inadequacy only (GL041, search space exhausted) — and the report must
# be byte-identical serial vs parallel.
# Fleet smoke (DESIGN.md § 14): a 3-node lalrd fleet on localhost
# replays the corpus under concurrent load, one node is killed
# mid-replay, and the run passes only with zero client-visible errors,
# observed peer fills (X-Repro-Cache: peer), a tripped breaker for the
# corpse, and /readyz flipping on drain.
cluster-smoke:
	$(GO) run ./cmd/lalrd -cluster-smoke

ambig-smoke:
	$(GO) build -o bin/grammarlint ./cmd/grammarlint
	./bin/grammarlint -corpus dangling-else,not-lalr -parallel 1 > bin/ambig-smoke-1.txt
	./bin/grammarlint -corpus dangling-else,not-lalr -parallel 4 > bin/ambig-smoke-4.txt
	cmp bin/ambig-smoke-1.txt bin/ambig-smoke-4.txt
	grep -q 'GL040.*proven ambiguity' bin/ambig-smoke-1.txt
	grep -q 'GL041.*not an ambiguity' bin/ambig-smoke-1.txt

# Gate the corpus on the grammar linter: every corpus grammar is linted
# against its registry-pinned conflict budget; any error-severity
# finding (new conflicts, budget drift, reads cycles, useless symbols
# promoted by -Werror) fails the build.
lint-corpus:
	$(GO) run ./cmd/grammarlint -Werror -severity=error

# Regenerate the committed metrics snapshot.
metrics:
	$(GO) run ./cmd/lalrbench -quick -metrics-out BENCH_core.json
