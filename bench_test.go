package repro

// One benchmark family per table/figure of EXPERIMENTS.md.  The pretty
// tables come from cmd/lalrbench; these benches expose the same
// quantities through testing.B so `go test -bench` regenerates the raw
// series with allocation counts.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/grammar"
	"repro/internal/grammars"
	"repro/internal/lalrtable"
	"repro/internal/lr0"
	"repro/internal/lr1"
	"repro/internal/packed"
	"repro/internal/prop"
	"repro/internal/runtime"
	"repro/internal/slr"
)

// corpusBench runs fn once per iteration for every corpus grammar as a
// sub-benchmark.
func corpusBench(b *testing.B, fn func(b *testing.B, a *lr0.Automaton)) {
	for _, e := range grammars.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			g := grammars.MustLoad(e.Name)
			a := lr0.New(g, nil)
			b.ReportAllocs()
			b.ResetTimer()
			fn(b, a)
		})
	}
}

// BenchmarkTableI_LR0Construction measures the shared substrate every
// method pays for: building the canonical LR(0) collection.
func BenchmarkTableI_LR0Construction(b *testing.B) {
	for _, e := range grammars.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			g := grammars.MustLoad(e.Name)
			an := grammar.Analyze(g)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := lr0.New(g, an)
				b.ReportMetric(float64(len(a.States)), "states")
			}
		})
	}
}

// BenchmarkTableII_Relations measures building the DeRemer–Pennello
// relations plus solving them — the full look-ahead pass.
func BenchmarkTableII_Relations(b *testing.B) {
	corpusBench(b, func(b *testing.B, a *lr0.Automaton) {
		for i := 0; i < b.N; i++ {
			r := core.Compute(a)
			st := r.Stats()
			b.ReportMetric(float64(st.IncludesEdges), "includes-edges")
		}
	})
}

// BenchmarkTableIII_* compare the cost of the four look-ahead methods
// on the corpus (Table III of EXPERIMENTS.md).

func BenchmarkTableIII_SLR(b *testing.B) {
	corpusBench(b, func(b *testing.B, a *lr0.Automaton) {
		g := a.G
		for i := 0; i < b.N; i++ {
			// FOLLOW computation is SLR's real cost; force it fresh.
			aa := *a
			aa.An = grammar.Analyze(g)
			_ = slr.Compute(&aa)
		}
	})
}

func BenchmarkTableIII_DeRemerPennello(b *testing.B) {
	corpusBench(b, func(b *testing.B, a *lr0.Automaton) {
		for i := 0; i < b.N; i++ {
			_ = core.Compute(a)
		}
	})
}

func BenchmarkTableIII_Propagation(b *testing.B) {
	corpusBench(b, func(b *testing.B, a *lr0.Automaton) {
		for i := 0; i < b.N; i++ {
			_, _ = prop.Compute(a)
		}
	})
}

func BenchmarkTableIII_CanonicalMerge(b *testing.B) {
	corpusBench(b, func(b *testing.B, a *lr0.Automaton) {
		for i := 0; i < b.N; i++ {
			_ = lr1.New(a.G, a.An).MergeLALR(a)
		}
	})
}

// BenchmarkTableIV_Conflicts measures parse-table construction with
// precedence resolution, reporting unresolved conflicts.
func BenchmarkTableIV_Conflicts(b *testing.B) {
	corpusBench(b, func(b *testing.B, a *lr0.Automaton) {
		sets := core.Compute(a).Sets()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t := lalrtable.Build(a, sets)
			sr, rr := t.Unresolved()
			b.ReportMetric(float64(sr+rr), "conflicts")
		}
	})
}

// BenchmarkFigScaling_* sweep the expr-levels(n) family (Fig. scaling).

func scalingBench(b *testing.B, fn func(a *lr0.Automaton)) {
	for _, n := range []int{5, 10, 20, 40} {
		n := n
		b.Run(fmt.Sprintf("levels-%d", n), func(b *testing.B) {
			g := grammars.ExprLevels(n)
			a := lr0.New(g, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn(a)
			}
		})
	}
}

func BenchmarkFigScaling_DeRemerPennello(b *testing.B) {
	scalingBench(b, func(a *lr0.Automaton) { _ = core.Compute(a) })
}

func BenchmarkFigScaling_Propagation(b *testing.B) {
	scalingBench(b, func(a *lr0.Automaton) { _, _ = prop.Compute(a) })
}

func BenchmarkFigScaling_CanonicalMerge(b *testing.B) {
	scalingBench(b, func(a *lr0.Automaton) { _ = lr1.New(a.G, a.An).MergeLALR(a) })
}

// BenchmarkFigDigraph_* compare the Digraph SCC traversal with naive
// chaotic iteration on the adversarially ordered unit chain
// (Fig. digraph): naive is quadratic there, Digraph linear.

func digraphBench(b *testing.B, fn func(a *lr0.Automaton)) {
	for _, n := range []int{100, 400, 1600} {
		n := n
		b.Run(fmt.Sprintf("chain-%d", n), func(b *testing.B) {
			g := grammars.UnitChainReversed(n)
			a := lr0.New(g, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fn(a)
			}
		})
	}
}

func BenchmarkFigDigraph_Digraph(b *testing.B) {
	digraphBench(b, func(a *lr0.Automaton) { _ = core.Compute(a) })
}

func BenchmarkFigDigraph_Naive(b *testing.B) {
	digraphBench(b, func(a *lr0.Automaton) { _ = core.ComputeNaive(a) })
}

// BenchmarkParserThroughput measures the runtime engine (not part of
// the paper's evaluation, but the artifact a user ultimately runs):
// tokens parsed per op on generated sentences of the expression corpus
// grammar.
func BenchmarkParserThroughput(b *testing.B) {
	g := grammars.MustLoad("expr")
	a := lr0.New(g, nil)
	tbl := lalrtable.Build(a, core.Compute(a).Sets())
	sg, err := grammar.NewSentenceGenerator(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var toks []runtime.Token
	for len(toks) < 4096 {
		for _, s := range sg.Generate(rng, 12) {
			toks = append(toks, runtime.Token{Sym: s})
		}
		// Separate sentences cannot be concatenated for this grammar, so
		// benchmark per-sentence parses below instead of one long input.
		break
	}
	sents := make([][]grammar.Sym, 64)
	total := 0
	for i := range sents {
		sents[i] = sg.Generate(rng, 12)
		total += len(sents[i])
	}
	p := &runtime.Parser{Tables: tbl} // no tree building
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sents {
			if _, err := p.Parse(runtime.SymLexer(g, s)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(total), "tokens/op")
}

// BenchmarkTableV_* accompany the table-compression experiment: the
// build cost of packing and the runtime cost of packed vs dense lookup.

func BenchmarkTableV_Pack(b *testing.B) {
	corpusBench(b, func(b *testing.B, a *lr0.Automaton) {
		tbl := lalrtable.Build(a, core.Compute(a).Sets())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := packed.Pack(tbl)
			b.ReportMetric(p.Stats().Ratio, "ratio")
		}
	})
}

func BenchmarkTableV_LookupDense(b *testing.B) {
	g := grammars.MustLoad("pascal")
	a := lr0.New(g, nil)
	tbl := lalrtable.Build(a, core.Compute(a).Sets())
	numT := g.NumTerminals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % tbl.NumStates
		term := i % numT
		_ = tbl.Action[q][term]
	}
}

func BenchmarkTableV_LookupPacked(b *testing.B) {
	g := grammars.MustLoad("pascal")
	a := lr0.New(g, nil)
	tbl := lalrtable.Build(a, core.Compute(a).Sets())
	p := packed.Pack(tbl)
	numT := g.NumTerminals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % tbl.NumStates
		term := grammar.Sym(i % numT)
		_ = p.Action(q, term)
	}
}

func BenchmarkTableIII_DeRemerPennelloLazy(b *testing.B) {
	corpusBench(b, func(b *testing.B, a *lr0.Automaton) {
		for i := 0; i < b.N; i++ {
			_ = core.ComputeLazy(a)
		}
	})
}
