// Package repro is a LALR(1) parser generator built around the
// DeRemer–Pennello look-ahead algorithm ("Efficient computation of
// LALR(1) look-ahead sets", SIGPLAN '79 / TOPLAS 1982), together with
// the baseline methods the paper compares against: SLR(1), yacc-style
// look-ahead propagation, and canonical LR(1) (with LALR-by-merging).
//
// The typical flow:
//
//	g, err := repro.LoadGrammar("calc.y", src)       // yacc-like text
//	res, err := repro.Analyze(g, repro.Options{})    // DeRemer–Pennello
//	if !res.Tables.Adequate() { ... res.Tables.ConflictReport() ... }
//	p := repro.NewParser(res.Tables)
//	tree, err := p.Parse(lexer)
//
// The underlying machinery lives in internal packages; this package
// re-exports the stable surface.
package repro

import (
	"context"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/cex"
	"repro/internal/core"
	"repro/internal/glr"
	"repro/internal/grammar"
	"repro/internal/guard"
	"repro/internal/lalrtable"
	"repro/internal/lint"
	"repro/internal/lr0"
	"repro/internal/lr1"
	"repro/internal/obs"
	"repro/internal/prop"
	"repro/internal/runtime"
	"repro/internal/slr"
)

// Re-exported types.  The aliases are the public names; see the
// internal packages for full documentation of each.
type (
	// Grammar is an immutable, augmented context-free grammar.
	Grammar = grammar.Grammar
	// Sym identifies a grammar symbol.
	Sym = grammar.Sym
	// Production is a single rewriting rule.
	Production = grammar.Production
	// Tables is a complete ACTION/GOTO parse table with conflict log.
	Tables = lalrtable.Tables
	// Conflict is one conflicted parse-table entry.
	Conflict = lalrtable.Conflict
	// Parser executes parse tables against a token stream.
	Parser = runtime.Parser
	// Token is one lexeme.
	Token = runtime.Token
	// Lexer supplies tokens to a Parser.
	Lexer = runtime.Lexer
	// Node is a parse-tree node.
	Node = runtime.Node
	// SyntaxError reports a parse failure with expected terminals.
	SyntaxError = runtime.SyntaxError
)

// EOF is the end-of-input terminal, present in every grammar.
const EOF = grammar.EOF

// Method selects the look-ahead computation.
type Method int

// Look-ahead methods, in increasing cost order (the paper's Table III).
const (
	// MethodDeRemerPennello computes exact LALR(1) look-ahead via the
	// reads/includes/lookback relations and the Digraph traversal — the
	// paper's contribution and the default.
	MethodDeRemerPennello Method = iota
	// MethodSLR uses FOLLOW sets (SLR(1)): cheapest, may report
	// conflicts on grammars that are LALR(1) but not SLR(1).
	MethodSLR
	// MethodPropagation computes LALR(1) by spontaneous generation and
	// propagation (yacc's historical technique).
	MethodPropagation
	// MethodCanonicalMerge builds the canonical LR(1) collection and
	// merges states by core: exact but far more expensive.
	MethodCanonicalMerge
)

func (m Method) String() string {
	switch m {
	case MethodDeRemerPennello:
		return "deremer-pennello"
	case MethodSLR:
		return "slr"
	case MethodPropagation:
		return "propagation"
	case MethodCanonicalMerge:
		return "canonical-merge"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod converts a name as accepted by the CLI tools
// ("dp", "slr", "prop", "lr1", and long forms) into a Method.
func ParseMethod(name string) (Method, error) {
	switch name {
	case "dp", "deremer-pennello", "lalr":
		return MethodDeRemerPennello, nil
	case "slr":
		return MethodSLR, nil
	case "prop", "propagation", "yacc":
		return MethodPropagation, nil
	case "lr1", "canonical", "canonical-merge":
		return MethodCanonicalMerge, nil
	default:
		return 0, fmt.Errorf("unknown method %q (want dp, slr, prop or lr1)", name)
	}
}

// Recorder collects phase timings and cost-model counters across the
// pipeline; see package repro/internal/obs.  A nil Recorder disables
// all recording at no cost.
type Recorder = obs.Recorder

// NewRecorder returns an empty Recorder, to pass in Options.Recorder
// and read back with its Tree, JSON and Snapshot sinks afterwards.
func NewRecorder() *Recorder { return obs.New() }

// Resource governance.  Analysis of untrusted grammars can explode —
// canonical LR(1) state counts grow exponentially on adversarial
// inputs — so Analyze accepts a context and hard resource limits, and
// converts violations (and escaped panics) into a small typed error
// taxonomy; see package repro/internal/guard.
type (
	// Limits are hard per-grammar resource ceilings (states, table
	// entries, relation edges, wall-clock deadline).  The zero value is
	// unlimited.
	Limits = guard.Limits
	// LimitError reports which resource crossed which ceiling in which
	// phase; retrieve with errors.As, or match the ErrLimit sentinel
	// with errors.Is.
	LimitError = guard.ErrLimitExceeded
	// InternalError is a panic converted to an error at a containment
	// boundary (Analyze, Lint, AnalyzeAll), carrying the grammar name
	// and the recovered stack.
	InternalError = guard.ErrInternal
)

// Sentinel errors for resource governance, matched with errors.Is.
var (
	// ErrCanceled matches every cancellation, whether from a done
	// context or a passed deadline.
	ErrCanceled = guard.ErrCanceled
	// ErrLimit matches every *LimitError regardless of resource.
	ErrLimit = guard.ErrLimit
)

// Options configure Analyze.
type Options struct {
	// Method selects the look-ahead computation; the zero value is
	// MethodDeRemerPennello.
	Method Method
	// Recorder, when non-nil, receives per-phase spans and cost-model
	// counters for the whole Analyze pipeline.
	Recorder *Recorder
	// Context, when non-nil, cancels the analysis at the next hot-loop
	// checkpoint; Analyze then returns an error satisfying
	// errors.Is(err, ErrCanceled).
	Context context.Context
	// Limits bound the resources the analysis may consume.  The zero
	// value is unlimited; a violation yields a *LimitError.
	Limits Limits
	// Parallelism is the worker fan-out for the phases that support it:
	// the two Digraph fixpoint solves of MethodDeRemerPennello (by SCC-
	// condensation level) and the read-off closures of
	// MethodPropagation (by state).  Values <= 1 keep the pipeline
	// serial; any value yields byte-identical results.
	Parallelism int
}

// Result is the outcome of Analyze.
type Result struct {
	Grammar   *Grammar
	Method    Method
	Automaton *lr0.Automaton
	// Tables are the parse tables after precedence resolution.
	Tables *Tables
	// Lookahead holds the raw sets: Lookahead[q][i] is the look-ahead
	// for Automaton.States[q].Reductions[i].
	Lookahead [][]bitset.Set
	// DP holds the DeRemer–Pennello relations (DR, reads, includes,
	// lookback, Read, Follow) when Method is MethodDeRemerPennello,
	// else nil.
	DP *core.Result
}

// LoadGrammar parses a grammar in the yacc-like format documented on
// grammar.Parse.  filename is used in error messages only.
func LoadGrammar(filename, src string) (*Grammar, error) {
	return grammar.Parse(filename, src)
}

// Fingerprint returns the canonical content address of an analysis: a
// hex SHA-256 over a domain-separated encoding of the grammar text and
// opts.Method.  Analyze is a pure function of exactly those inputs, so
// equal fingerprints mean byte-identical exported reports — the keying
// contract of the lalrd response cache, and the join key between
// lalrbench metrics documents (failed runs record the fingerprint next
// to their error, successful runs next to their measurements).
//
// Execution-only options — Recorder, Context, Limits, Parallelism — do
// not change what an analysis computes (parallel and serial solves are
// byte-identical), only whether and how fast it is allowed to finish,
// and are deliberately excluded from the address.
func Fingerprint(src string, opts Options) string {
	return cache.Fingerprint(src, opts.Method.String())
}

// Analyze builds the LR(0) automaton, computes look-ahead sets with the
// selected method and constructs parse tables.
//
// The analysis is governed by Options.Context and Options.Limits: a
// done context or a crossed resource ceiling aborts at the next
// checkpoint with an error matching ErrCanceled or ErrLimit.  A panic
// escaping any pipeline stage is contained and returned as an
// *InternalError instead of crashing the caller.
func Analyze(g *Grammar, opts Options) (res *Result, err error) {
	if g == nil {
		return nil, fmt.Errorf("repro: nil grammar")
	}
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, guard.NewInternal(g.Name(), v)
		}
	}()
	rec := opts.Recorder
	root := rec.Start("analyze")
	defer root.End()
	bud := guard.New(opts.Context, opts.Limits, rec)
	bud.SetOwner(g.Name())
	sp := rec.Start("grammar-analysis")
	an := grammar.Analyze(g)
	sp.End()
	sp = rec.Start("lr0-construction")
	a, err := lr0.NewBudgeted(g, an, rec, bud)
	sp.End()
	if err != nil {
		return nil, err
	}
	res = &Result{Grammar: g, Method: opts.Method, Automaton: a}
	sp = rec.Start("lookahead-" + opts.Method.String())
	switch opts.Method {
	case MethodDeRemerPennello:
		res.DP, err = core.ComputeWith(a, core.Options{
			Workers: opts.Parallelism, Recorder: rec, Budget: bud,
		})
		if err == nil {
			res.Lookahead = res.DP.Sets()
		}
	case MethodSLR:
		// SLR FOLLOW computation is linear in the grammar and needs no
		// internal checkpoints; the budgeted LR(0) and table phases
		// bracket it.
		res.Lookahead = slr.Compute(a)
	case MethodPropagation:
		res.Lookahead, _, err = prop.ComputeWith(a, opts.Parallelism, rec, bud)
	case MethodCanonicalMerge:
		var m *lr1.Machine
		if m, err = lr1.NewBudgeted(g, an, bud); err == nil {
			res.Lookahead = m.MergeLALR(a)
		}
	default:
		sp.End()
		return nil, fmt.Errorf("repro: unknown method %v", opts.Method)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	res.Tables, err = lalrtable.BuildBudgeted(a, res.Lookahead, rec, bud)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// AnalyzeContext is Analyze with an explicit cancellation context; it
// overrides Options.Context.
func AnalyzeContext(ctx context.Context, g *Grammar, opts Options) (*Result, error) {
	opts.Context = ctx
	return Analyze(g, opts)
}

// NewParser returns a tree-building parser for previously built tables.
func NewParser(t *Tables) *Parser { return runtime.New(t) }

// GLRRecognizer is a generalized-LR recogniser that forks on conflicts
// instead of resolving them, counting distinct derivations — the tool
// for demonstrating that a reported conflict is a real ambiguity.
type GLRRecognizer = glr.Parser

// NewGLR builds a GLR recogniser from an analysis result.
func NewGLR(res *Result) *GLRRecognizer {
	return glr.New(res.Automaton, res.Lookahead)
}

// SymLexer adapts a bare symbol sequence into a Lexer, mainly for tests
// and examples.
func SymLexer(g *Grammar, syms []Sym) Lexer { return runtime.SymLexer(g, syms) }

// ConflictExample pairs an unresolved conflict with a concrete input
// that triggers it.
type ConflictExample struct {
	Conflict Conflict
	// Input is a shortest terminal prefix reaching the conflicted
	// state, followed by the conflicting look-ahead terminal.
	Input []Sym
	// Text renders Input with a • marker before the look-ahead.
	Text string
}

// Counterexamples returns a triggering input for every unresolved
// conflict in the result's tables.
func (r *Result) Counterexamples() []ConflictExample {
	gen := cex.NewGenerator(r.Automaton)
	var out []ConflictExample
	for _, c := range r.Tables.Conflicts {
		if c.Resolution != lalrtable.DefaultShift && c.Resolution != lalrtable.DefaultEarlyRule {
			continue
		}
		ex := gen.ForConflict(c)
		if ex == nil {
			continue
		}
		input := append(append([]Sym{}, ex.Prefix...), ex.Terminal)
		out = append(out, ConflictExample{
			Conflict: c,
			Input:    input,
			Text:     ex.String(r.Grammar),
		})
	}
	return out
}

// Static analysis.  Lint runs the pass-based grammar linter of
// internal/lint: useless symbols, derivation cycles, reads-cycle
// not-LR(k) detection, conflict provenance and friends, each finding
// carrying a stable GLxxx diagnostic code.  See LintAll in batch.go for
// the corpus-parallel form.
type (
	// LintOptions configure a lint run (pass selection, severity floor,
	// -Werror promotion, conflict budget).
	LintOptions = lint.Options
	// LintReport is the outcome of linting one grammar.
	LintReport = lint.Report
	// LintDiagnostic is one finding with its stable code and locus.
	LintDiagnostic = lint.Diagnostic
	// LintBudget is an expected-conflict budget (the %expect analogue).
	LintBudget = lint.Budget
	// LintSeverity orders diagnostics: LintInfo, LintWarning, LintError.
	LintSeverity = lint.Severity
)

// Lint severity levels, re-exported.
const (
	LintInfo    = lint.Info
	LintWarning = lint.Warning
	LintError   = lint.Error
)

// Lint runs every enabled static-analysis pass over g and returns the
// filtered report.  It fails only on unusable options (unknown pass
// names); grammar problems are diagnostics in the report, not errors.
func Lint(g *Grammar, opts LintOptions) (*LintReport, error) {
	return lint.Run(g, opts)
}
