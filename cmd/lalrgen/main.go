// Command lalrgen is the parser-generator front end: it reads a grammar
// in the yacc-like format, computes look-ahead sets with a selectable
// method (DeRemer–Pennello by default), reports conflicts, and can dump
// the automaton, the look-ahead sets, the DeRemer–Pennello relations
// and the parse tables.
//
// Usage:
//
//	lalrgen [flags] grammar.y
//	lalrgen [flags] -corpus pascal
//
// Flags:
//
//	-method M     look-ahead method: dp (default), slr, prop, lr1
//	-states       dump the LR(0) states
//	-la           dump the look-ahead set of every reduction
//	-table        dump the ACTION/GOTO tables
//	-relations    dump DeRemer–Pennello relation statistics and edges
//	-conflicts    dump the full conflict report
//	-parse "a b"  parse a space-separated terminal sequence, print tree
//	-stats        print the nested phase-timing tree and cost counters
//	-trace-json F write the phase/counter trace as JSON to F ('-' for stdout)
//	-Werror       exit non-zero on unresolved conflicts beyond the %expect budget
//	-timeout D    abort the analysis after wall-clock duration D (e.g. 5s)
//	-max-states N abort past N LR(0)/LR(1) states
//	-keep-going   downgrade a -timeout/-max-states abort to a warning and exit 0
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"repro"
	"repro/internal/cex"
	"repro/internal/cliguard"
	"repro/internal/export"
	"repro/internal/gen"
	"repro/internal/grammar"
	"repro/internal/grammars"
	"repro/internal/lalrtable"
	"repro/internal/lint"
	"repro/internal/runtime"
	"repro/internal/treecount"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lalrgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lalrgen", flag.ContinueOnError)
	var (
		methodName = fs.String("method", "dp", "look-ahead method: dp, slr, prop, lr1")
		corpus     = fs.String("corpus", "", "analyze the named built-in corpus grammar instead of a file")
		dumpStates = fs.Bool("states", false, "dump LR(0) states")
		dumpLA     = fs.Bool("la", false, "dump look-ahead sets")
		dumpTable  = fs.Bool("table", false, "dump ACTION/GOTO tables")
		dumpRel    = fs.Bool("relations", false, "dump DeRemer–Pennello relations")
		dumpConf   = fs.Bool("conflicts", false, "dump full conflict report")
		parseInput = fs.String("parse", "", "parse a space-separated terminal sequence")
		genOut     = fs.String("o", "", "write a standalone Go parser to this file")
		genPkg     = fs.String("pkg", "parser", "package name for -o")
		genPrefix  = fs.String("prefix", "", "identifier prefix for -o")
		dotOut     = fs.String("dot", "", "write the LR(0) automaton in Graphviz dot format to this file ('-' for stdout)")
		jsonOut    = fs.String("json", "", "write a machine-readable analysis report to this file ('-' for stdout)")
		probe      = fs.Int("probe", 0, "probe N random sentences for ambiguity (tree counting)")
		stats      = fs.Bool("stats", false, "print the nested phase-timing tree and cost counters")
		traceJSON  = fs.String("trace-json", "", "write the phase/counter trace as JSON to this file ('-' for stdout)")
		werror     = fs.Bool("Werror", false, "exit non-zero on unresolved conflicts beyond the %expect budget")
	)
	gf := cliguard.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	method, err := repro.ParseMethod(*methodName)
	if err != nil {
		return err
	}

	var g *repro.Grammar
	switch {
	case *corpus != "":
		g, err = grammars.Load(*corpus)
		if err != nil {
			return err
		}
	case fs.NArg() == 1:
		src, rerr := os.ReadFile(fs.Arg(0))
		if rerr != nil {
			return rerr
		}
		g, err = repro.LoadGrammar(fs.Arg(0), string(src))
		if err != nil {
			return err
		}
	default:
		names := make([]string, 0)
		for _, e := range grammars.All() {
			names = append(names, e.Name)
		}
		return fmt.Errorf("need a grammar file or -corpus name (available: %s)", strings.Join(names, ", "))
	}

	if useless := grammar.CheckUseful(g).Useless(g); len(useless) > 0 {
		fmt.Fprintf(out, "warning: useless symbols: %s\n", strings.Join(useless, ", "))
	}

	var rec *repro.Recorder
	if *stats || *traceJSON != "" {
		rec = repro.NewRecorder()
	}
	ctx, cancel := gf.Context()
	defer cancel()
	res, err := repro.AnalyzeContext(ctx, g, repro.Options{Method: method, Recorder: rec, Limits: gf.Limits()})
	if err != nil {
		if gf.KeepGoing && cliguard.Recoverable(err) {
			fmt.Fprintf(out, "warning: analysis of %s aborted: %v\n", g.Name(), err)
			return nil
		}
		return err
	}

	a := res.Automaton
	sr, rr := res.Tables.Unresolved()
	fmt.Fprintf(out, "grammar %s: %d terminals, %d nonterminals, %d productions\n",
		g.Name(), g.NumTerminals(), g.NumNonterminals(), len(g.Productions()))
	fmt.Fprintf(out, "method %s: %d LR(0) states, %d nonterminal transitions\n",
		method, len(a.States), len(a.NtTrans))
	fmt.Fprintf(out, "conflicts: %d shift/reduce, %d reduce/reduce (%d resolved by precedence)\n",
		sr, rr, len(res.Tables.Conflicts)-sr-rr)
	if expSR, expRR := g.Expect(); expSR >= 0 || expRR >= 0 {
		if expSR < 0 {
			expSR = 0
		}
		if expRR < 0 {
			expRR = 0
		}
		if sr != expSR || rr != expRR {
			fmt.Fprintf(out, "warning: %%expect %d/%d but found %d/%d conflicts\n", expSR, expRR, sr, rr)
		} else {
			fmt.Fprintf(out, "conflict counts match %s declarations\n", "%expect")
		}
	}
	if res.DP != nil {
		if res.DP.NotLRk() {
			fmt.Fprintln(out, "diagnosis: the reads relation is cyclic — the grammar is not LR(k) for any k")
		}
		st := res.DP.Stats()
		fmt.Fprintf(out, "relations: %d reads edges, %d includes edges, %d lookback edges\n",
			st.ReadsEdges, st.IncludesEdges, st.LookbackEdges)
	}

	if *dumpConf && len(res.Tables.Conflicts) > 0 {
		fmt.Fprintln(out, "\nconflict report:")
		fmt.Fprint(out, res.Tables.ConflictReport())
		cgen := cex.NewGenerator(a)
		printed := false
		for _, c := range res.Tables.Conflicts {
			if c.Resolution != lalrtable.DefaultShift && c.Resolution != lalrtable.DefaultEarlyRule {
				continue
			}
			if ex := cgen.ForConflict(c); ex != nil {
				if !printed {
					fmt.Fprintln(out, "\ncounterexamples:")
					printed = true
				}
				fmt.Fprintf(out, "state %d, token %s: %s\n", c.State, g.SymName(c.Terminal), ex.String(g))
			}
		}
	}
	if *dumpStates {
		fmt.Fprintln(out, "\nstates:")
		for _, s := range a.States {
			fmt.Fprint(out, a.StateString(s))
		}
	}
	if *dumpLA {
		fmt.Fprintln(out, "\nlook-ahead sets:")
		for q, s := range a.States {
			for i, pi := range s.Reductions {
				if pi == 0 {
					continue
				}
				fmt.Fprintf(out, "state %d: LA(%s) = %s\n", q,
					g.ProdString(pi), grammar.TerminalSetNames(g, res.Lookahead[q][i]))
			}
		}
	}
	if *dumpRel && res.DP != nil {
		fmt.Fprintln(out, "\nDeRemer–Pennello relations:")
		for i := range a.NtTrans {
			fmt.Fprintf(out, "%s: DR=%s Read=%s Follow=%s\n",
				res.DP.TransString(i),
				grammar.TerminalSetNames(g, res.DP.DR[i]),
				grammar.TerminalSetNames(g, res.DP.Read[i]),
				grammar.TerminalSetNames(g, res.DP.Follow[i]))
			for _, j := range res.DP.Reads[i] {
				fmt.Fprintf(out, "  reads %s\n", res.DP.TransString(int(j)))
			}
			for _, j := range res.DP.Includes[i] {
				fmt.Fprintf(out, "  includes %s\n", res.DP.TransString(int(j)))
			}
		}
	}
	if *dumpTable {
		fmt.Fprintln(out, "\nparse tables:")
		fmt.Fprint(out, res.Tables.String())
	}
	if *probe > 0 {
		if err := probeAmbiguity(out, g, *probe); err != nil {
			return err
		}
	}
	if *stats {
		fmt.Fprintln(out, "\nphase timings:")
		fmt.Fprint(out, rec.Tree())
	}
	if *traceJSON != "" {
		data, err := rec.JSON()
		if err != nil {
			return err
		}
		if *traceJSON == "-" {
			fmt.Fprintln(out, string(data))
		} else {
			if err := os.WriteFile(*traceJSON, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *traceJSON)
		}
	}
	if *jsonOut != "" {
		rep := export.Build(a, res.Lookahead, res.Tables, res.DP, method.String())
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if *jsonOut == "-" {
			fmt.Fprintln(out, string(data))
		} else {
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonOut)
		}
	}
	if *dotOut != "" {
		w := out
		var f *os.File
		if *dotOut != "-" {
			var err error
			f, err = os.Create(*dotOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := a.WriteDot(w); err != nil {
			return err
		}
		if f != nil {
			fmt.Fprintf(out, "wrote %s\n", *dotOut)
		}
	}
	if *genOut != "" {
		code, err := gen.Generate(res.Tables, gen.Options{Package: *genPkg, Prefix: *genPrefix})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*genOut, code, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d bytes, package %s)\n", *genOut, len(code), *genPkg)
	}
	if *parseInput != "" {
		syms, err := symbolsOf(g, *parseInput)
		if err != nil {
			return err
		}
		p := repro.NewParser(res.Tables)
		tree, err := p.Parse(runtime.SymLexer(g, syms))
		if err != nil {
			return fmt.Errorf("parse: %w", err)
		}
		fmt.Fprintln(out, "\nparse tree:")
		fmt.Fprint(out, tree.Dump(g))
	}
	// Gate last, so every requested dump still appears before the
	// failing exit.  The policy (exact %expect budget or conflict-free)
	// is the lint engine's, not a local reimplementation.
	if *werror {
		if err := lint.ConflictGate(g, res.Tables); err != nil {
			return fmt.Errorf("-Werror: %w", err)
		}
	}
	return nil
}

// probeAmbiguity samples random sentences and counts their parse trees,
// reporting the first ambiguity witness found.  A conflict report says a
// grammar is not LALR(1); a witness proves it is not unambiguous at all.
func probeAmbiguity(out io.Writer, g *repro.Grammar, n int) error {
	c, err := treecount.New(g)
	if err != nil {
		fmt.Fprintf(out, "ambiguity probe: %v\n", err)
		return nil
	}
	sg, err := grammar.NewSentenceGenerator(g)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	checked := 0
	for i := 0; i < n; i++ {
		sent := sg.Generate(rng, 10)
		if len(sent) > 60 {
			continue
		}
		checked++
		trees, err := c.Count(sent)
		if err != nil {
			return err
		}
		if trees > 1 {
			var names []string
			for _, s := range sent {
				names = append(names, g.SymName(s))
			}
			fmt.Fprintf(out, "ambiguity probe: AMBIGUOUS — %q has %d parse trees (checked %d sentences)\n",
				strings.Join(names, " "), trees, checked)
			return nil
		}
	}
	fmt.Fprintf(out, "ambiguity probe: no witness in %d sampled sentences (not a proof of unambiguity)\n", checked)
	return nil
}

// symbolsOf resolves space-separated terminal names, accepting both the
// quoted ('+') and bare (+) spellings of literal terminals.
func symbolsOf(g *repro.Grammar, input string) ([]repro.Sym, error) {
	var syms []repro.Sym
	for _, f := range strings.Fields(input) {
		s := g.SymByName(f)
		if s == grammar.NoSym {
			s = g.SymByName("'" + f + "'")
		}
		if s == grammar.NoSym || !g.IsTerminal(s) {
			return nil, fmt.Errorf("unknown terminal %q", f)
		}
		syms = append(syms, s)
	}
	return syms, nil
}
