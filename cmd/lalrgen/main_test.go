package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestCorpusAnalysis(t *testing.T) {
	out, err := runCapture(t, "-corpus", "pascal", "-conflicts")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"grammar pascal", "method deremer-pennello",
		"conflicts: 1 shift/reduce, 0 reduce/reduce",
		"token ELSE: shift/reduce",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFileAnalysisWithDumps(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.y")
	if err := os.WriteFile(file, []byte(`
%token NUM
%left '+'
%expect 0
%%
e : e '+' e | NUM ;
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCapture(t, "-states", "-la", "-table", "-relations", file)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"states:", "look-ahead sets:", "parse tables:", "DeRemer–Pennello relations:",
		"state 0", "LA(e → NUM)", "acc", "conflict counts match %expect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestExpectMismatchWarning(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.y")
	os.WriteFile(file, []byte(`
%token IF THEN ELSE other
%expect 0
%%
s : IF 'c' THEN s | IF 'c' THEN s ELSE s | other ;
`), 0o644)
	out, err := runCapture(t, file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "warning: %expect 0/0 but found 1/0") {
		t.Errorf("missing expect warning:\n%s", out)
	}
}

func TestParseFlag(t *testing.T) {
	out, err := runCapture(t, "-corpus", "expr", "-parse", "id + id * id")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "parse tree:") || !strings.Contains(out, "e → e '+' t") {
		t.Errorf("parse tree missing:\n%s", out)
	}
	// Syntax errors are reported.
	if _, err := runCapture(t, "-corpus", "expr", "-parse", "+ id"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := runCapture(t, "-corpus", "expr", "-parse", "zzz"); err == nil ||
		!strings.Contains(err.Error(), "unknown terminal") {
		t.Errorf("err = %v, want unknown terminal", err)
	}
}

func TestMethodSelection(t *testing.T) {
	out, err := runCapture(t, "-corpus", "assignment", "-method", "slr")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "conflicts: 1 shift/reduce") {
		t.Errorf("SLR should conflict on the assignment grammar:\n%s", out)
	}
	out, err = runCapture(t, "-corpus", "assignment", "-method", "lr1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "conflicts: 0 shift/reduce") {
		t.Errorf("canonical-merge should be clean:\n%s", out)
	}
}

func TestNotLRkDiagnosis(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.y")
	os.WriteFile(file, []byte("%%\ns : a s | 'b' ;\na : ;\n"), 0o644)
	out, err := runCapture(t, file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "not LR(k)") {
		t.Errorf("missing not-LR(k) diagnosis:\n%s", out)
	}
}

func TestUselessSymbolWarning(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.y")
	os.WriteFile(file, []byte("%%\ns : 'a' ;\ndead : 'd' ;\n"), 0o644)
	out, err := runCapture(t, file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "useless symbols:") || !strings.Contains(out, "dead") {
		t.Errorf("missing useless-symbol warning:\n%s", out)
	}
}

func TestGenerationToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "parser.go")
	msg, err := runCapture(t, "-corpus", "json", "-o", out, "-pkg", "jsonparser")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "wrote "+out) {
		t.Errorf("missing write confirmation:\n%s", msg)
	}
	code, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "package jsonparser") {
		t.Error("generated file lacks package clause")
	}
	// Conflicted grammars refuse generation.
	if _, err := runCapture(t, "-corpus", "dangling-else", "-o", filepath.Join(dir, "x.go")); err == nil {
		t.Error("generation should fail on conflicted tables")
	}
}

func TestArgumentErrors(t *testing.T) {
	if _, err := runCapture(t); err == nil || !strings.Contains(err.Error(), "need a grammar file") {
		t.Errorf("err = %v", err)
	}
	if _, err := runCapture(t, "-corpus", "nope"); err == nil {
		t.Error("unknown corpus should fail")
	}
	if _, err := runCapture(t, "-method", "bogus", "-corpus", "expr"); err == nil {
		t.Error("unknown method should fail")
	}
	if _, err := runCapture(t, "/does/not/exist.y"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestJSONAndDotOutput(t *testing.T) {
	dir := t.TempDir()
	jsonFile := filepath.Join(dir, "report.json")
	dotFile := filepath.Join(dir, "auto.dot")
	out, err := runCapture(t, "-corpus", "expr", "-json", jsonFile, "-dot", dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote "+jsonFile) || !strings.Contains(out, "wrote "+dotFile) {
		t.Errorf("write confirmations missing:\n%s", out)
	}
	data, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"method": "deremer-pennello"`, `"adequate": true`, `"readsEdges"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("json missing %q", want)
		}
	}
	dot, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph") {
		t.Error("dot file malformed")
	}
	// '-' streams to the output writer.
	out, err = runCapture(t, "-corpus", "json", "-json", "-")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"grammar"`) {
		t.Errorf("inline json missing:\n%s", out)
	}
}

func TestAmbiguityProbe(t *testing.T) {
	out, err := runCapture(t, "-corpus", "dangling-else", "-probe", "300")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "AMBIGUOUS") {
		t.Errorf("dangling else not flagged:\n%s", out)
	}
	out, err = runCapture(t, "-corpus", "json", "-probe", "50")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "no witness") {
		t.Errorf("json wrongly flagged:\n%s", out)
	}
	// Cyclic grammars are reported, not crashed on.
	dir := t.TempDir()
	file := filepath.Join(dir, "cyc.y")
	os.WriteFile(file, []byte("%%\ns : s | 'x' ;\n"), 0o644)
	out, err = runCapture(t, "-probe", "10", file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "derivation cycle") {
		t.Errorf("cyclic grammar probe:\n%s", out)
	}
}

func TestStatsFlag(t *testing.T) {
	out, err := runCapture(t, "-corpus", "expr", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"phase timings:", "analyze",
		"  lr0-construction", "  lookahead-deremer-pennello",
		"    solve-reads", "    solve-includes",
		"counters:", "bitset_unions", "relation_edges", "sccs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceJSONFlag(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "trace.json")
	out, err := runCapture(t, "-corpus", "expr", "-trace-json", file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote "+file) {
		t.Errorf("missing write confirmation:\n%s", out)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Schema   string           `json:"schema"`
		Phases   []map[string]any `json:"phases"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if e.Schema == "" || len(e.Phases) == 0 {
		t.Errorf("trace lacks schema/phases: %+v", e)
	}
	if e.Counters["nt_transitions"] == 0 || e.Counters["bitset_unions"] == 0 {
		t.Errorf("trace lacks cost counters: %v", e.Counters)
	}
	// '-' streams to the output writer.
	out, err = runCapture(t, "-corpus", "expr", "-trace-json", "-")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"schema"`) {
		t.Errorf("inline trace missing:\n%s", out)
	}
}

func TestWerrorGatesOnConflicts(t *testing.T) {
	dir := t.TempDir()
	dangle := filepath.Join(dir, "dangle.y")
	os.WriteFile(dangle, []byte(`
%token IF THEN ELSE other
%%
s : IF 'c' THEN s | IF 'c' THEN s ELSE s | other ;
`), 0o644)

	// Undeclared conflict + -Werror: non-zero exit, summary still printed.
	out, err := runCapture(t, "-Werror", dangle)
	if err == nil || !strings.Contains(err.Error(), "shift/reduce") {
		t.Fatalf("want shift/reduce gate error, got %v", err)
	}
	if !strings.Contains(out, "conflicts: 1 shift/reduce") {
		t.Errorf("summary should still print before the failing exit:\n%s", out)
	}
	// Without -Werror the same grammar stays a warning-level run.
	if _, err := runCapture(t, dangle); err != nil {
		t.Fatalf("without -Werror conflicts must not fail: %v", err)
	}

	// A declared matching budget satisfies the gate.
	budgeted := filepath.Join(dir, "budgeted.y")
	os.WriteFile(budgeted, []byte(`
%token IF THEN ELSE other
%expect 1
%%
s : IF 'c' THEN s | IF 'c' THEN s ELSE s | other ;
`), 0o644)
	if _, err := runCapture(t, "-Werror", budgeted); err != nil {
		t.Fatalf("budgeted conflicts should pass -Werror: %v", err)
	}

	// A stale %expect on a clean grammar fails the gate too.
	stale := filepath.Join(dir, "stale.y")
	os.WriteFile(stale, []byte(`
%token A
%expect 1
%%
s : A ;
`), 0o644)
	if _, err := runCapture(t, "-Werror", stale); err == nil {
		t.Fatal("stale expect declaration should fail -Werror")
	}
	if _, err := runCapture(t, "-corpus", "expr", "-Werror"); err != nil {
		t.Fatalf("clean corpus grammar should pass -Werror: %v", err)
	}
}
