// Command grammarstat prints the per-grammar statistics tables of the
// reproduction (Tables I and II of EXPERIMENTS.md): grammar and LR(0)
// machine sizes, DeRemer–Pennello relation sizes, and adequacy under
// each look-ahead method.
//
// Usage:
//
//	grammarstat              # the whole built-in corpus
//	grammarstat file.y...    # specific grammar files
//	grammarstat -stats       # also print per-grammar phase timings/counters
//	grammarstat -parallel 0  # analyze grammars on one worker per CPU
//	grammarstat -timeout 5s -max-states 10000 -keep-going
//	                         # bound the run; aborted grammars become
//	                         # warning lines instead of failures
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/cliguard"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/grammar"
	"repro/internal/grammars"
	"repro/internal/guard"
	"repro/internal/lalrtable"
	"repro/internal/lr0"
	"repro/internal/lr1"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/slr"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "grammarstat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("grammarstat", flag.ContinueOnError)
	stats := fs.Bool("stats", false, "print per-grammar phase timings and cost counters")
	parallel := fs.Int("parallel", 1, "grammars analyzed concurrently (0 = one worker per CPU)")
	gf := cliguard.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()

	var gs []*grammar.Grammar
	if len(args) == 0 {
		for _, e := range grammars.All() {
			gs = append(gs, grammars.MustLoad(e.Name))
		}
	} else {
		for _, path := range args {
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			g, err := repro.LoadGrammar(path, string(src))
			if err != nil {
				return err
			}
			gs = append(gs, g)
		}
	}

	t1 := report.New("Table I — grammar and LR(0) machine statistics",
		"grammar", "terms", "nonterms", "prods", "LR0 states", "LR1 states", "nt-transitions")
	t2 := report.New("Table II — DeRemer–Pennello relation statistics",
		"grammar", "DR elems", "reads", "includes", "lookback", "inc SCCs", "inc cyclic", "not LR(k)")
	t3 := report.New("Table IV — adequacy by method (unresolved conflicts sr/rr)",
		"grammar", "LR(0)", "SLR(1)", "LALR(1)", "LR(1)")

	var rec *obs.Recorder
	if *stats {
		rec = obs.New()
	}
	// The per-grammar pipeline runs (possibly in parallel) through the
	// batch driver; table rendering below stays serial and in input
	// order, so -parallel changes wall time, never output.  The
	// canonical LR(1) machine is built here too (for the "LR1 states"
	// and CLR(1) columns), so it runs under the same budget — it is the
	// stage -max-states most needs to bound.
	type analysis struct {
		a  *lr0.Automaton
		dp *core.Result
		m  *lr1.Machine
	}
	results := make([]*analysis, len(gs))
	ctx, cancel := gf.Context()
	defer cancel()
	policy := driver.FailFast
	if gf.KeepGoing {
		policy = driver.Collect
	}
	err := driver.Run(ctx, len(gs), driver.Options{Workers: *parallel, Recorder: rec, Policy: policy},
		func(ctx context.Context, i int, rec *obs.Recorder) error {
			g := gs[i]
			sp := rec.Start("analyze-" + g.Name())
			defer sp.End()
			bud := guard.New(ctx, gf.Limits(), rec)
			bud.SetOwner(g.Name())
			an := grammar.Analyze(g)
			a, err := lr0.NewBudgeted(g, an, rec, bud)
			if err != nil {
				return err
			}
			dp, err := core.ComputeBudgeted(a, rec, bud)
			if err != nil {
				return err
			}
			m, err := lr1.NewBudgeted(g, an, bud)
			if err != nil {
				return err
			}
			results[i] = &analysis{a: a, dp: dp, m: m}
			return nil
		})
	if err != nil {
		if !gf.KeepGoing {
			return err
		}
		fmt.Fprintf(out, "warning: continuing past failures: %v\n", err)
	}
	for i, g := range gs {
		if results[i] == nil {
			continue
		}
		a, dp, m := results[i].a, results[i].dp, results[i].m
		st := dp.Stats()

		t1.Row(g.Name(), g.NumTerminals(), g.NumNonterminals(), len(g.Productions()),
			len(a.States), len(m.States), len(a.NtTrans))
		t2.Row(g.Name(), st.DRTotal, st.ReadsEdges, st.IncludesEdges, st.LookbackEdges,
			st.IncludesSCCs, st.IncludesCyclic, st.ReadsCyclic)

		lalrT := lalrtable.Build(a, dp.Sets())
		slrT := lalrtable.Build(a, slr.Compute(a))
		lsr, lrr := lalrT.Unresolved()
		ssr, srr := slrT.Unresolved()
		csr, crr := m.ConflictCounts()
		t3.Row(g.Name(), lr0Conflicts(a), fmt.Sprintf("%d/%d", ssr, srr),
			fmt.Sprintf("%d/%d", lsr, lrr), fmt.Sprintf("%d/%d", csr, crr))
	}

	fmt.Fprintln(out, t1)
	fmt.Fprintln(out, t2)
	fmt.Fprintln(out, t3)
	if *stats {
		fmt.Fprintln(out, "phase timings (per grammar):")
		fmt.Fprint(out, rec.Tree())
	}
	return nil
}

// lr0Conflicts counts LR(0) inadequate states: states with a reduction
// plus either a terminal shift or a second reduction.
func lr0Conflicts(a *lr0.Automaton) string {
	inadequate := 0
	for _, s := range a.States {
		reds := 0
		for _, pi := range s.Reductions {
			if pi != 0 {
				reds++
			}
		}
		shifts := 0
		for _, tr := range s.Transitions {
			if a.G.IsTerminal(tr.Sym) {
				shifts++
			}
		}
		if reds > 1 || (reds == 1 && shifts > 0) {
			inadequate++
		}
	}
	return fmt.Sprintf("%d states", inadequate)
}
