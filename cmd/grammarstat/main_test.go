package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCorpusTables(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table I", "Table II", "Table IV",
		"pascal", "csub", "ada", "algol", "fortran", "json",
		"nt-transitions", "includes", "LALR(1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFileMode(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "tiny.y")
	os.WriteFile(file, []byte("%token A\n%%\ns : A ;\n"), 0o644)
	var b strings.Builder
	if err := run([]string{file}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "tiny") {
		t.Errorf("file-mode output missing grammar name:\n%s", b.String())
	}
}

func TestFileErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"/no/such.y"}, &b); err == nil {
		t.Error("missing file should fail")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.y")
	os.WriteFile(bad, []byte("not a grammar"), 0o644)
	if err := run([]string{bad}, &b); err == nil {
		t.Error("malformed grammar should fail")
	}
}

func TestStatsFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-stats"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"phase timings (per grammar):",
		"pascal", "  lr0-states", "  solve-includes",
		"counters:", "bitset_unions", "relation_edges",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}
