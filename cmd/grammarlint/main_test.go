package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runOK runs the CLI and fails the test on usage/I/O errors;
// errFindings (error-severity diagnostics) is returned to the caller.
func runOK(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errw bytes.Buffer
	err := run(args, &out, &errw)
	if err != nil && !errors.Is(err, errFindings) {
		t.Fatalf("run(%v): %v\nstderr:\n%s", args, err, errw.String())
	}
	return out.String(), err
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output differs from golden\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// Golden coverage: one clean corpus grammar (expr — no conflicts) and
// one with conflicts (dangling-else), in text and SARIF form, each
// asserted byte-identical at -parallel 1 and -parallel 4.
func TestGolden(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"expr.txt", []string{"-corpus", "expr", "-format", "text"}},
		{"expr.sarif", []string{"-corpus", "expr", "-format", "sarif"}},
		{"dangling-else.txt", []string{"-corpus", "dangling-else", "-format", "text"}},
		{"dangling-else.sarif", []string{"-corpus", "dangling-else", "-format", "sarif"}},
		{"corpus-pair.txt", []string{"-corpus", "expr,dangling-else", "-format", "text"}},
		// Ambiguity verdicts: dangling-else proves GL040 (with witness),
		// not-lalr proves GL041; all three formats carry the witness —
		// JSON as a "witness" field, SARIF as a region snippet.
		{"ambig-pair.txt", []string{"-corpus", "dangling-else,not-lalr", "-format", "text"}},
		{"ambig-pair.json", []string{"-corpus", "dangling-else,not-lalr", "-format", "json"}},
		{"ambig-pair.sarif", []string{"-corpus", "dangling-else,not-lalr", "-format", "sarif"}},
		// Starving the walk of pair configurations forces GL042.
		{"ambig-undecided.txt", []string{"-corpus", "dangling-else", "-format", "text", "-ambig-pairs", "1"}},
	}
	for _, c := range cases {
		t.Run(c.golden, func(t *testing.T) {
			serial, err1 := runOK(t, append([]string{"-parallel", "1"}, c.args...)...)
			par, err4 := runOK(t, append([]string{"-parallel", "4"}, c.args...)...)
			if serial != par {
				t.Fatalf("-parallel 1 and -parallel 4 outputs differ:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, par)
			}
			if (err1 == nil) != (err4 == nil) {
				t.Fatalf("exit status differs across -parallel: %v vs %v", err1, err4)
			}
			checkGolden(t, c.golden, serial)
		})
	}
}

func TestWholeCorpusParallelDeterminism(t *testing.T) {
	serial, _ := runOK(t, "-parallel", "1")
	par, _ := runOK(t, "-parallel", "4")
	if serial != par {
		t.Fatal("whole-corpus output differs between -parallel 1 and -parallel 4")
	}
	if serial == "" {
		t.Fatal("whole-corpus lint produced no output")
	}
}

func TestCorpusGateIsClean(t *testing.T) {
	// The `make lint-corpus` contract: registry budgets keep the corpus
	// free of error-severity findings under -Werror -severity=error.
	out, err := runOK(t, "-Werror", "-severity=error")
	if err != nil {
		t.Fatalf("corpus gate reported errors:\n%s", out)
	}
	if out != "" {
		t.Fatalf("corpus gate should print nothing, got:\n%s", out)
	}
}

func TestReadsCycleFileReportsNotLRk(t *testing.T) {
	out, err := runOK(t, filepath.Join("testdata", "readscycle.y"))
	if !errors.Is(err, errFindings) {
		t.Fatalf("reads-cycle grammar should exit with findings, got err=%v", err)
	}
	if !strings.Contains(out, "GL020") || !strings.Contains(out, "not LR(k)") {
		t.Errorf("missing GL020 / not-LR(k) verdict:\n%s", out)
	}
	if !strings.Contains(out, "cycle: ") || !strings.Contains(out, " reads ") {
		t.Errorf("missing concrete cycle path:\n%s", out)
	}
}

func TestJSONFormatAndFlags(t *testing.T) {
	out, _ := runOK(t, "-corpus", "expr", "-format", "json")
	if !strings.Contains(out, `"schema": "repro-lint/1"`) {
		t.Errorf("JSON output missing schema marker:\n%s", out)
	}
	out, _ = runOK(t, "-corpus", "expr", "-format", "json", "-enable", "unit-chains")
	if !strings.Contains(out, `"passes": [`) || strings.Contains(out, `"conflicts"`) {
		t.Errorf("-enable should restrict the pass list:\n%s", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"-corpus", "expr", "-format", "nope"}, &buf, &buf); err == nil {
		t.Error("bad -format should be a usage error")
	}
	if err := run([]string{"-corpus", "nope"}, &buf, &buf); err == nil {
		t.Error("unknown corpus grammar should be a usage error")
	}
}

func TestListFlag(t *testing.T) {
	out, _ := runOK(t, "-list")
	for _, want := range []string{"reads-cycles", "GL020", "conflicts", "GL030"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsGoToStderr(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-corpus", "expr", "-stats"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "lint timings:") {
		t.Error("-stats must not pollute stdout")
	}
	es := errw.String()
	if !strings.Contains(es, "lint-pass-reads-cycles") || !strings.Contains(es, "lint-facts") {
		t.Errorf("stderr should carry per-pass timings, got:\n%s", es)
	}
}

// TestCSubAllFormats pins the acceptance criterion: the C-subset
// grammar emits stable diagnostic codes in text, JSON and SARIF alike.
func TestCSubAllFormats(t *testing.T) {
	wantCodes := []string{"GL011", "GL012", "GL021", "GL030"}
	for _, format := range []string{"text", "json", "sarif"} {
		out, err := runOK(t, "-corpus", "csub", "-format", format)
		if err != nil {
			t.Fatalf("%s: csub is within budget, must not exit with findings: %v", format, err)
		}
		for _, code := range wantCodes {
			if !strings.Contains(out, code) {
				t.Errorf("%s output missing code %s", format, code)
			}
		}
	}
}
