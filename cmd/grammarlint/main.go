// Command grammarlint runs the grammar static-analysis passes of
// internal/lint over grammar files or the built-in corpus and renders
// the findings as text, JSON or SARIF 2.1.0.
//
// Usage:
//
//	grammarlint [flags] grammar.y ...
//	grammarlint [flags] -corpus csub,lua
//	grammarlint [flags]              # whole corpus
//
// Flags:
//
//	-corpus a,b    lint the named corpus grammars (default: all of them)
//	-format F      output format: text (default), json, sarif
//	-severity S    drop findings below this severity: info (default), warning, error
//	-enable a,b    run only the named passes
//	-disable a,b   skip the named passes
//	-Werror        promote warnings to errors
//	-parallel N    lint N grammars concurrently (0 = one per CPU); also
//	               fans the per-conflict ambiguity walks out over N workers
//	-ambig-len N   ambiguity walk: max witness extension tokens (0 = default)
//	-ambig-pairs N ambiguity walk: max stack-pair configurations (0 = default)
//	-stats         print per-pass timings and counters to stderr
//	-list          list the available passes and diagnostic codes
//	-timeout D     abort the whole run after wall-clock duration D (e.g. 5s)
//	-max-states N  abort grammars past N LR(0)/LR(1) states
//	-keep-going    lint the remaining grammars when one is aborted; report
//	               skipped grammars on stderr and exit 0
//
// Corpus grammars are linted against their registry-pinned conflict
// budgets, so expected conflicts report at info severity and only
// regressions surface as warnings; file grammars use their %expect
// declarations.  The exit status is 2 on usage errors, 1 when any
// error-severity finding is reported, 0 otherwise — `grammarlint
// -Werror -severity=error` is therefore a CI gate that prints exactly
// the findings that break the build.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/cliguard"
	"repro/internal/grammars"
	"repro/internal/lint"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "grammarlint:", err)
		os.Exit(2)
	}
}

// errFindings signals error-severity diagnostics (exit 1, already
// rendered) as opposed to usage or I/O failures (exit 2, printed).
var errFindings = errors.New("error-severity findings reported")

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("grammarlint", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		corpus   = fs.String("corpus", "", "comma-separated corpus grammar names (default: all)")
		format   = fs.String("format", "text", "output format: text, json, sarif")
		sevName  = fs.String("severity", "info", "minimum severity to report: info, warning, error")
		enable   = fs.String("enable", "", "comma-separated pass names to run exclusively")
		disable  = fs.String("disable", "", "comma-separated pass names to skip")
		werror   = fs.Bool("Werror", false, "promote warnings to errors")
		parallel = fs.Int("parallel", 0, "grammars to lint concurrently (0 = one per CPU)")
		ambLen   = fs.Int("ambig-len", 0, "ambiguity walk: max witness extension tokens (0 = default)")
		ambPairs = fs.Int("ambig-pairs", 0, "ambiguity walk: max stack-pair configurations (0 = default)")
		stats    = fs.Bool("stats", false, "print per-pass timings and counters to stderr")
		list     = fs.Bool("list", false, "list passes and diagnostic codes")
	)
	gf := cliguard.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		printList(out)
		return nil
	}
	minSev, err := lint.ParseSeverity(*sevName)
	if err != nil {
		return err
	}

	var (
		gs      []*repro.Grammar
		budgets []*repro.LintBudget
	)
	addCorpus := func(e grammars.Entry) error {
		g, err := grammars.Load(e.Name)
		if err != nil {
			return err
		}
		gs = append(gs, g)
		budgets = append(budgets, &repro.LintBudget{SR: e.WantSR, RR: e.WantRR})
		return nil
	}
	switch {
	case *corpus != "":
		for _, name := range splitList(*corpus) {
			e, err := grammars.Get(name)
			if err != nil {
				return err
			}
			if err := addCorpus(e); err != nil {
				return err
			}
		}
	case fs.NArg() > 0:
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			g, err := repro.LoadGrammar(path, string(src))
			if err != nil {
				return err
			}
			gs = append(gs, g)
			budgets = append(budgets, nil) // use the grammar's %expect
		}
	default:
		for _, e := range grammars.All() {
			if err := addCorpus(e); err != nil {
				return err
			}
		}
	}

	var rec *repro.Recorder
	if *stats {
		rec = repro.NewRecorder()
	}
	ctx, cancel := gf.Context()
	defer cancel()
	policy := repro.BatchFailFast
	if gf.KeepGoing {
		policy = repro.BatchCollect
	}
	reports, err := repro.LintAll(gs, repro.LintBatchOptions{
		Lint: repro.LintOptions{
			Enable:        splitList(*enable),
			Disable:       splitList(*disable),
			MinSeverity:   minSev,
			Werror:        *werror,
			Limits:        gf.Limits(),
			Parallelism:   *parallel,
			AmbigMaxLen:   *ambLen,
			AmbigMaxPairs: *ambPairs,
		},
		Budgets:  budgets,
		Workers:  *parallel,
		Context:  ctx,
		Recorder: rec,
		Policy:   policy,
	})
	if err != nil {
		if !gf.KeepGoing {
			return err
		}
		// Keep-going: drop the grammars that were aborted (their report
		// entry is nil), note them on stderr, and render the rest.
		fmt.Fprintf(errw, "grammarlint: continuing past failures: %v\n", err)
		var keptG []*repro.Grammar
		var keptR []*repro.LintReport
		for i, r := range reports {
			if r != nil {
				keptG = append(keptG, gs[i])
				keptR = append(keptR, r)
			}
		}
		gs, reports = keptG, keptR
	}

	// Reports are positional; rendering them serially in input order
	// makes the output byte-identical for every -parallel value.
	switch *format {
	case "text":
		err = lint.WriteText(out, reports)
	case "json":
		err = lint.WriteJSON(out, reports, gs)
	case "sarif":
		err = lint.WriteSARIF(out, reports, gs)
	default:
		return fmt.Errorf("unknown format %q (want text, json or sarif)", *format)
	}
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintln(errw, "lint timings:")
		fmt.Fprint(errw, rec.Tree())
	}
	for _, r := range reports {
		if r.HasErrors() {
			return errFindings
		}
	}
	return nil
}

func printList(out io.Writer) {
	fmt.Fprintln(out, "passes:")
	for _, a := range lint.Analyzers {
		fmt.Fprintf(out, "  %-16s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(out, "diagnostic codes:")
	for _, r := range lint.Rules {
		fmt.Fprintf(out, "  %s %-24s %-7s %s\n", r.Code, r.Name, r.Default, r.Summary)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
