/* The injected not-LR(k) witness: the x y tail of s is nullable, so
   (q, y) reads (q', x) reads (q, y) is a nontrivial reads cycle. */
%token X Y
%%
s : x y s | ;
x : X | ;
y : Y | ;
