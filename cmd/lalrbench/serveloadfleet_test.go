package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestServeLoadFleetHealthy replays the corpus over a two-node fleet:
// every request must succeed (availability 1.0 everywhere), the text
// report carries per-endpoint and aggregate rows, and the metrics
// document is a well-formed repro-serveload/2.
func TestServeLoadFleetHealthy(t *testing.T) {
	ts1 := httptest.NewServer(server.New(server.Config{CacheBytes: 8 << 20}))
	defer ts1.Close()
	ts2 := httptest.NewServer(server.New(server.Config{CacheBytes: 8 << 20}))
	defer ts2.Close()

	var out bytes.Buffer
	metricsPath := filepath.Join(t.TempDir(), "fleet.json")
	if err := runServeLoadFleet(&out, []string{ts1.URL, ts2.URL}, metricsPath); err != nil {
		t.Fatalf("runServeLoadFleet: %v\n%s", err, out.String())
	}
	for _, want := range []string{ts1.URL, ts2.URL, "aggregate", "100.00%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc serveLoadFleetMetrics
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != serveLoadFleetSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, serveLoadFleetSchema)
	}
	if len(doc.Endpoints) != 2 {
		t.Fatalf("endpoints = %d, want 2", len(doc.Endpoints))
	}
	total := 0
	for _, e := range doc.Endpoints {
		if e.Availability != 1 || e.Errors != 0 {
			t.Errorf("endpoint %s: availability %v errors %d, want 1.0 and 0", e.BaseURL, e.Availability, e.Errors)
		}
		if e.Latency.P50Ns <= 0 || e.Latency.P99Ns < e.Latency.P50Ns {
			t.Errorf("endpoint %s: implausible latency summary %+v", e.BaseURL, e.Latency)
		}
		total += e.Requests
	}
	if doc.Aggregate.Requests != total || total != doc.Grammars*doc.Passes {
		t.Fatalf("aggregate requests = %d, endpoints sum = %d, want %d",
			doc.Aggregate.Requests, total, doc.Grammars*doc.Passes)
	}
}

// TestServeLoadFleetDegraded points one fleet slot at a dead address:
// the replay must finish anyway, charging the failures to that
// endpoint's availability and leaving the healthy node at 1.0.
func TestServeLoadFleetDegraded(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{CacheBytes: 8 << 20}))
	defer ts.Close()
	// A listener that is opened and closed immediately: a port that
	// refuses connections, i.e. a crashed node.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	var out bytes.Buffer
	if err := runServeLoadFleet(&out, []string{ts.URL, dead}, ""); err != nil {
		t.Fatalf("runServeLoadFleet: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "down at start") {
		t.Errorf("report does not flag the dead endpoint:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "0.00%") {
		t.Errorf("dead endpoint availability not reported as 0.00%%:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "requests failed") {
		t.Errorf("note does not mention failed requests:\n%s", out.String())
	}
}

// TestServeLoadFleetNoHealthyEndpoint: a fleet that is entirely dead is
// an error, not an all-zero report.
func TestServeLoadFleetNoHealthyEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	var out bytes.Buffer
	if err := runServeLoadFleet(&out, []string{dead}, ""); err == nil {
		t.Fatal("runServeLoadFleet succeeded against a fully dead fleet")
	}
}
