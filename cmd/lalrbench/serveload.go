package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/grammars"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// serveLoadSchema versions the -serve-load -metrics-out layout.  It is
// a sibling of the repro-bench/1 document: where that one captures the
// offline pipeline per grammar, this one captures the served latency
// distribution per replay pass.
const serveLoadSchema = "repro-serveload/1"

// serveLoadMetrics is the top-level -serve-load -metrics-out document.
type serveLoadMetrics struct {
	Schema   string           `json:"schema"`
	BaseURL  string           `json:"base_url"`
	Grammars int              `json:"grammars"`
	Passes   []passLoadReport `json:"passes"`
}

// passLoadReport digests one replay pass: wall time, the per-request
// latency distribution, and the cache outcomes the server reported.
type passLoadReport struct {
	Pass           string            `json:"pass"` // "cold" or "hot"
	WallNs         int64             `json:"wall_ns"`
	Latency        telemetry.Summary `json:"latency"`
	CacheHits      int               `json:"cache_hits"`
	HitRatio       float64           `json:"hit_ratio"`
	GrammarsPerSec float64           `json:"grammars_per_sec"`
	// DPSolveNs sums the server-side solve-reads + solve-includes span
	// wall times over the pass's traces: the Digraph fixpoint share of
	// the pass.  Served requests (hit, coalesced, frozen) record no
	// phases, so a fully warm pass reports 0.
	DPSolveNs int64 `json:"dp_solve_ns"`
}

// runServeLoad replays the corpus against a running lalrd twice — a
// cold pass that forces every grammar through the pipeline and a hot
// pass that should be served from the content-addressed cache — and
// reports per-pass wall time, per-request latency percentiles, and hit
// counts.  The hot bodies are also checked byte-for-byte against the
// cold ones: a cache hit that is not byte-identical is a correctness
// failure, not a performance detail.
//
// The per-request timings go through the same log₂-bucketed histogram
// lalrd itself serves from /metricz, so the client-side p50/p99/p999
// here and the server-side digests are directly comparable.  When
// metricsOut is non-empty the same digests are written there as a
// repro-serveload/1 JSON document ('-' for stdout).
//
// The cold pass is only truly cold against a freshly started server;
// against a warm one the tool still measures and says what it saw.
func runServeLoad(out io.Writer, baseURL, metricsOut string) error {
	base := strings.TrimRight(baseURL, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	if err := checkHealth(client, base); err != nil {
		return fmt.Errorf("lalrd at %s is not healthy: %w", base, err)
	}

	entries := grammars.All()
	type passResult struct {
		dur     time.Duration
		hits    int
		lat     *telemetry.Histogram
		bodies  [][]byte
		solveNs int64
	}
	runPass := func() (passResult, error) {
		pr := passResult{lat: telemetry.NewHistogram()}
		pr.bodies = make([][]byte, len(entries))
		start := time.Now()
		for i, e := range entries {
			reqStart := time.Now()
			body, served, reqID, err := postAnalyze(client, base, e.Name, e.Src)
			pr.lat.Observe(time.Since(reqStart))
			if err != nil {
				return pr, fmt.Errorf("grammar %s: %w", e.Name, err)
			}
			if served {
				pr.hits++
			}
			pr.bodies[i] = body
			// The trace fetch happens after the latency observation, so
			// the DP-solve accounting never inflates the request timings.
			ns, err := fetchSolveNs(client, base, reqID)
			if err != nil {
				return pr, fmt.Errorf("grammar %s: trace: %w", e.Name, err)
			}
			pr.solveNs += ns
		}
		pr.dur = time.Since(start)
		return pr, nil
	}

	cold, err := runPass()
	if err != nil {
		return fmt.Errorf("cold pass: %w", err)
	}
	hot, err := runPass()
	if err != nil {
		return fmt.Errorf("hot pass: %w", err)
	}
	for i := range entries {
		if !bytes.Equal(cold.bodies[i], hot.bodies[i]) {
			return fmt.Errorf("grammar %s: hot body differs from cold body (%d vs %d bytes) — cache is not byte-deterministic",
				entries[i].Name, len(hot.bodies[i]), len(cold.bodies[i]))
		}
	}

	n := len(entries)
	doc := serveLoadMetrics{Schema: serveLoadSchema, BaseURL: base, Grammars: n}
	t := report.New(fmt.Sprintf("serve-load against %s (%d corpus grammars)", base, n),
		"pass", "wall", "p50", "p99", "p999", "cache hits", "dp solve", "grammars/s")
	for _, p := range []struct {
		name string
		r    passResult
	}{{"cold", cold}, {"hot", hot}} {
		sum := p.r.lat.Snapshot().Summary()
		t.Row(p.name, p.r.dur.Round(time.Microsecond),
			time.Duration(sum.P50Ns).Round(time.Microsecond),
			time.Duration(sum.P99Ns).Round(time.Microsecond),
			time.Duration(sum.P999Ns).Round(time.Microsecond),
			fmt.Sprintf("%d/%d", p.r.hits, n),
			time.Duration(p.r.solveNs).Round(time.Microsecond),
			float64(n)/p.r.dur.Seconds())
		doc.Passes = append(doc.Passes, passLoadReport{
			Pass:           p.name,
			WallNs:         p.r.dur.Nanoseconds(),
			Latency:        sum,
			CacheHits:      p.r.hits,
			HitRatio:       float64(p.r.hits) / float64(n),
			GrammarsPerSec: float64(n) / p.r.dur.Seconds(),
			DPSolveNs:      p.r.solveNs,
		})
	}
	if cold.hits == 0 && hot.dur > 0 {
		t.Note("speedup hot/cold = %.1fx; every hot body byte-identical to its cold body", float64(cold.dur)/float64(hot.dur))
	} else {
		t.Note("cold pass saw %d pre-existing cache hits (server was already warm); hot bodies byte-identical", cold.hits)
	}
	fmt.Fprint(out, t.String())

	if metricsOut != "" {
		if err := writeServeLoadMetrics(metricsOut, doc); err != nil {
			return err
		}
	}

	if hot.hits < n {
		return fmt.Errorf("hot pass: %d/%d requests hit the cache, want all %d (is -cache-size too small for the corpus?)", hot.hits, n, n)
	}
	return nil
}

// writeServeLoadMetrics writes the serve-load document as indented JSON
// to path ('-' for stdout).
func writeServeLoadMetrics(path string, doc serveLoadMetrics) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lalrbench: wrote %s (%d passes)\n", path, len(doc.Passes))
	return nil
}

func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// postAnalyze sends one /v1/analyze request and reports whether the
// response was served without running the pipeline — the X-Repro-Cache
// header says "hit", "coalesced", or "frozen" then, "miss" otherwise —
// plus the request ID for a follow-up trace fetch.
func postAnalyze(client *http.Client, base, name, src string) ([]byte, bool, string, error) {
	reqBody, err := json.Marshal(server.AnalyzeRequest{Grammar: src, Filename: name + ".y"})
	if err != nil {
		return nil, false, "", err
	}
	resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return nil, false, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	served := resp.Header.Get("X-Repro-Cache") != "miss"
	return body, served, resp.Header.Get("X-Repro-Request-Id"), nil
}

// fetchSolveNs retrieves a request's trace and sums the wall time of
// its solve-reads and solve-includes spans — the Digraph fixpoint share
// of that request.  Served requests carry no phase spans, so they
// contribute 0.  A trace that has already been evicted from the
// server's ring also contributes 0 (the load pass may outrun the
// retention window); only transport failures are errors.
func fetchSolveNs(client *http.Client, base, id string) (int64, error) {
	if id == "" {
		return 0, nil
	}
	resp, err := client.Get(base + "/debugz/traces/" + id)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return 0, nil
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("trace %s: status %d", id, resp.StatusCode)
	}
	var tr server.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return 0, err
	}
	var total int64
	for _, e := range tr.Trace.Entries {
		total += sumSolveSpans(e.Phases)
	}
	return total, nil
}

// sumSolveSpans walks a span forest adding up the Digraph solve phases.
func sumSolveSpans(spans []obs.SpanExport) int64 {
	var total int64
	for _, sp := range spans {
		if sp.Name == "solve-reads" || sp.Name == "solve-includes" {
			total += sp.WallNs
		}
		total += sumSolveSpans(sp.Children)
	}
	return total
}
