package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/grammars"
	"repro/internal/report"
	"repro/internal/server"
)

// runServeLoad replays the corpus against a running lalrd twice — a
// cold pass that forces every grammar through the pipeline and a hot
// pass that should be served from the content-addressed cache — and
// reports per-pass wall time and hit counts.  The hot bodies are also
// checked byte-for-byte against the cold ones: a cache hit that is not
// byte-identical is a correctness failure, not a performance detail.
//
// The cold pass is only truly cold against a freshly started server;
// against a warm one the tool still measures and says what it saw.
func runServeLoad(out io.Writer, baseURL string) error {
	base := strings.TrimRight(baseURL, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	if err := checkHealth(client, base); err != nil {
		return fmt.Errorf("lalrd at %s is not healthy: %w", base, err)
	}

	entries := grammars.All()
	type passResult struct {
		dur    time.Duration
		hits   int
		bodies [][]byte
	}
	runPass := func() (passResult, error) {
		var pr passResult
		pr.bodies = make([][]byte, len(entries))
		start := time.Now()
		for i, e := range entries {
			body, hit, err := postAnalyze(client, base, e.Name, e.Src)
			if err != nil {
				return pr, fmt.Errorf("grammar %s: %w", e.Name, err)
			}
			if hit {
				pr.hits++
			}
			pr.bodies[i] = body
		}
		pr.dur = time.Since(start)
		return pr, nil
	}

	cold, err := runPass()
	if err != nil {
		return fmt.Errorf("cold pass: %w", err)
	}
	hot, err := runPass()
	if err != nil {
		return fmt.Errorf("hot pass: %w", err)
	}
	for i := range entries {
		if !bytes.Equal(cold.bodies[i], hot.bodies[i]) {
			return fmt.Errorf("grammar %s: hot body differs from cold body (%d vs %d bytes) — cache is not byte-deterministic",
				entries[i].Name, len(hot.bodies[i]), len(cold.bodies[i]))
		}
	}

	n := len(entries)
	t := report.New(fmt.Sprintf("serve-load against %s (%d corpus grammars)", base, n),
		"pass", "wall", "per-grammar", "cache hits", "grammars/s")
	for _, p := range []struct {
		name string
		r    passResult
	}{{"cold", cold}, {"hot", hot}} {
		perG := p.r.dur / time.Duration(n)
		t.Row(p.name, p.r.dur.Round(time.Microsecond), perG.Round(time.Microsecond),
			fmt.Sprintf("%d/%d", p.r.hits, n), float64(n)/p.r.dur.Seconds())
	}
	if cold.hits == 0 && hot.dur > 0 {
		t.Note("speedup hot/cold = %.1fx; every hot body byte-identical to its cold body", float64(cold.dur)/float64(hot.dur))
	} else {
		t.Note("cold pass saw %d pre-existing cache hits (server was already warm); hot bodies byte-identical", cold.hits)
	}
	fmt.Fprint(out, t.String())

	if hot.hits < n {
		return fmt.Errorf("hot pass: %d/%d requests hit the cache, want all %d (is -cache-size too small for the corpus?)", hot.hits, n, n)
	}
	return nil
}

func checkHealth(client *http.Client, base string) error {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// postAnalyze sends one /v1/analyze request and reports whether the
// response came from the server's cache (the X-Repro-Cache header).
func postAnalyze(client *http.Client, base, name, src string) ([]byte, bool, error) {
	reqBody, err := json.Marshal(server.AnalyzeRequest{Grammar: src, Filename: name + ".y"})
	if err != nil {
		return nil, false, err
	}
	resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Repro-Cache") == "hit", nil
}
