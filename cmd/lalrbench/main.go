// Command lalrbench regenerates every table and figure of the
// reproduction (see EXPERIMENTS.md): grammar/machine statistics,
// relation sizes, per-method look-ahead computation cost, adequacy, and
// the scaling/ablation figures.  Timings are wall-clock medians over
// adaptive repetition; the paper's claims are about ratios and shapes,
// which is what the harness prints.
//
// Usage:
//
//	lalrbench            # all experiments
//	lalrbench -run III   # only the experiment whose id contains "III"
//	lalrbench -quick     # smaller scaling sweeps (for CI)
//
// Observability flags:
//
//	-metrics-out F   write per-grammar machine-readable metrics JSON
//	                 (phase timings, cost-model counters, relation and
//	                 SCC statistics) to F instead of the text tables;
//	                 this is the format of the BENCH_*.json trajectory
//	-parallel N      collect the -metrics-out document with N concurrent
//	                 workers (0 = one per CPU).  Structural metrics and
//	                 counters are unaffected; wall-time fields are taken
//	                 under contention, so keep the default of 1 when the
//	                 timings themselves are the experiment
//	-cpuprofile F    write a CPU profile of the run to F
//	-memprofile F    write a heap profile at exit to F
//	-serve-load URLS replay the corpus against running lalrd instances
//	                 at the comma-separated base URLs.  One URL: once
//	                 cold and once hot, reporting per-pass wall time,
//	                 per-request p50/p99/p999 latency, and cache-hit
//	                 counts (plus a byte-identity check of the hot
//	                 bodies against the cold ones); -metrics-out writes
//	                 a repro-serveload/1 JSON document.  Several URLs:
//	                 the fleet load generator — round-robin replay with
//	                 per-endpoint and aggregate p50/p99/p999 latency and
//	                 availability; -metrics-out writes repro-serveload/2
//
// Governance flags (the -metrics-out path only — the text tables run
// trusted corpus grammars):
//
//	-timeout D       abort the run after wall-clock duration D (e.g. 5s)
//	-max-states N    abort grammars past N LR(0)/LR(1) states
//	-keep-going      record aborted grammars in the document (with an
//	                 "error" field) instead of failing the run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/cliguard"
	"repro/internal/core"
	"repro/internal/digraph"
	"repro/internal/driver"
	"repro/internal/grammar"
	"repro/internal/grammars"
	"repro/internal/guard"
	"repro/internal/lalrtable"
	"repro/internal/lr0"
	"repro/internal/lr1"
	"repro/internal/obs"
	"repro/internal/packed"
	"repro/internal/prop"
	"repro/internal/report"
	"repro/internal/slr"
)

func main() {
	var (
		runFilter  = flag.String("run", "", "run only experiments whose id contains this substring")
		quick      = flag.Bool("quick", false, "smaller scaling sweeps")
		metricsOut = flag.String("metrics-out", "", "write per-grammar metrics JSON to this file ('-' for stdout) instead of the text tables")
		parallel   = flag.Int("parallel", 1, "metrics-collection workers (0 = one per CPU); >1 perturbs the timing fields")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		serveLoad  = flag.String("serve-load", "", "replay the corpus against running lalrd instances at these comma-separated base URLs; one URL reports cold vs hot cache throughput, several run the fleet load generator")
	)
	gf := cliguard.Register(flag.CommandLine)
	flag.Parse()

	if *serveLoad != "" {
		var bases []string
		for _, b := range strings.Split(*serveLoad, ",") {
			if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
				bases = append(bases, b)
			}
		}
		var err error
		switch len(bases) {
		case 0:
			err = fmt.Errorf("-serve-load: no base URLs in %q", *serveLoad)
		case 1:
			err = runServeLoad(os.Stdout, bases[0], *metricsOut)
		default:
			err = runServeLoadFleet(os.Stdout, bases, *metricsOut)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lalrbench:", err)
			os.Exit(1)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lalrbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lalrbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lalrbench:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize the retained heap before writing
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "lalrbench:", err)
		}
	}()

	if *metricsOut != "" {
		if err := emitMetrics(*metricsOut, *quick, *parallel, gf); err != nil {
			fmt.Fprintln(os.Stderr, "lalrbench:", err)
			os.Exit(1)
		}
		return
	}

	experiments := []struct {
		id  string
		fn  func(quick bool) string
		doc string
	}{
		{"Table-I", tableI, "grammar and LR(0)/LR(1) machine statistics"},
		{"Table-II", tableII, "DeRemer–Pennello relation statistics"},
		{"Table-III", tableIII, "look-ahead computation cost by method"},
		{"Table-IV", tableIV, "adequacy by method (unresolved conflicts)"},
		{"Table-V", tableV, "parse-table compression (defaults + comb packing)"},
		{"Fig-scaling", figScaling, "cost growth with grammar size"},
		{"Fig-digraph", figDigraph, "Digraph vs naive iteration"},
	}
	ran := 0
	for _, e := range experiments {
		if *runFilter != "" && !strings.Contains(e.id, *runFilter) {
			continue
		}
		ran++
		fmt.Printf("== %s: %s ==\n\n", e.id, e.doc)
		fmt.Println(e.fn(*quick))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "lalrbench: no experiment matches -run %q\n", *runFilter)
		os.Exit(1)
	}
}

// measure runs f repeatedly until at least 40ms have elapsed (or 1000
// iterations) and returns the per-call duration.
func measure(f func()) time.Duration {
	return measureBudget(f, 40*time.Millisecond)
}

// measureBudget is measure with an explicit repetition budget, so the
// CI-quick metrics path can trade precision for speed.
func measureBudget(f func(), budget time.Duration) time.Duration {
	f() // warm-up
	var (
		total time.Duration
		n     int
	)
	for total < budget && n < 1000 {
		start := time.Now()
		f()
		total += time.Since(start)
		n++
	}
	return total / time.Duration(n)
}

func corpusAutomata() []*lr0.Automaton {
	var out []*lr0.Automaton
	for _, e := range grammars.All() {
		g := grammars.MustLoad(e.Name)
		out = append(out, lr0.New(g, nil))
	}
	return out
}

func tableI(bool) string {
	t := report.New("", "grammar", "terms", "nonterms", "prods",
		"LR0 states", "LR1 states", "state ratio", "nt-transitions")
	for _, a := range corpusAutomata() {
		g := a.G
		m := lr1.New(g, a.An)
		t.Row(g.Name(), g.NumTerminals(), g.NumNonterminals(), len(g.Productions()),
			len(a.States), len(m.States), float64(len(m.States))/float64(len(a.States)),
			len(a.NtTrans))
	}
	t.Note("LR(1) machines are consistently larger; the gap is what LALR avoids paying for")
	return t.String()
}

func tableII(bool) string {
	t := report.New("", "grammar", "nt-trans", "DR elems", "reads", "includes",
		"lookback", "inc SCCs", "largest SCC", "inc cyclic")
	for _, a := range corpusAutomata() {
		st := core.Compute(a).Stats()
		t.Row(a.G.Name(), st.NtTransitions, st.DRTotal, st.ReadsEdges,
			st.IncludesEdges, st.LookbackEdges, st.IncludesSCCs, st.LargestIncSCC,
			st.IncludesCyclic)
	}
	t.Note("relation sizes are near-linear in nonterminal transitions — the basis of the cost claim")
	return t.String()
}

func tableIII(bool) string {
	t := report.New("", "grammar", "LR0 ns", "SLR ns", "DP ns", "DP-lazy ns", "prop ns", "LR1-merge ns",
		"DP/SLR", "prop/DP", "LR1/DP", "gen +SLR→+DP")
	var sumDP, sumSLR, sumProp, sumLR1, sumLR0 float64
	for _, a := range corpusAutomata() {
		a := a
		g := a.G
		// Cost of the shared LR(0) construction, the baseline every
		// generator pays before look-ahead computation.
		dLR0 := measure(func() { _ = lr0.New(g, nil) })
		// SLR must recompute FOLLOW each round to be comparable, so give
		// it a fresh Analysis per iteration.
		dSLR := measure(func() {
			aa := *a
			aa.An = grammar.Analyze(g)
			_ = slr.Compute(&aa)
		})
		dDP := measure(func() { _ = core.Compute(a) })
		dLazy := measure(func() { _ = core.ComputeLazy(a) })
		dProp := measure(func() { _, _ = prop.Compute(a) })
		dLR1 := measure(func() { _ = lr1.New(g, a.An).MergeLALR(a) })
		// The paper's framing: the whole-generator overhead of exact
		// LALR(1) over SLR(1), amortised against LR(0) construction.
		genOverhead := float64(dLR0+dDP) / float64(dLR0+dSLR)
		t.Row(g.Name(), dLR0.Nanoseconds(), dSLR.Nanoseconds(), dDP.Nanoseconds(),
			dLazy.Nanoseconds(), dProp.Nanoseconds(), dLR1.Nanoseconds(),
			float64(dDP)/float64(dSLR), float64(dProp)/float64(dDP),
			float64(dLR1)/float64(dDP), genOverhead)
		sumDP += float64(dDP)
		sumSLR += float64(dSLR)
		sumProp += float64(dProp)
		sumLR1 += float64(dLR1)
		sumLR0 += float64(dLR0)
	}
	t.Note("corpus totals: DP/SLR = %.2f, prop/DP = %.2f, LR1/DP = %.2f, generator(+DP)/generator(+SLR) = %.2f",
		sumDP/sumSLR, sumProp/sumDP, sumLR1/sumDP, (sumLR0+sumDP)/(sumLR0+sumSLR))
	t.Note("the paper's claim: exact LALR(1) at small cost over SLR in a whole generator, well under propagation and canonical LR(1)")
	t.Note("DP-lazy evaluates Follow only for inadequate states (bison's strategy); adequate-state reductions become defaults")
	return t.String()
}

func tableIV(bool) string {
	t := report.New("", "grammar", "LR0 inadequate states", "SLR sr/rr", "LALR sr/rr", "LR1 sr/rr", "SLR == LALR?")
	unresolvedSR := func(g *grammar.Grammar, term grammar.Sym, prod int) bool {
		return lalrtable.ResolveShiftReduce(g, term, prod) == lalrtable.DefaultShift
	}
	for _, a := range corpusAutomata() {
		g := a.G
		m := lr1.New(g, a.An)
		lalrT := lalrtable.Build(a, core.Compute(a).Sets())
		slrT := lalrtable.Build(a, slr.Compute(a))
		lsr, lrr := lalrT.Unresolved()
		ssr, srr := slrT.Unresolved()
		csr, crr := m.ResolvedConflictCounts(unresolvedSR)
		inad := 0
		for _, s := range a.States {
			reds, shifts := 0, 0
			for _, pi := range s.Reductions {
				if pi != 0 {
					reds++
				}
			}
			for _, tr := range s.Transitions {
				if g.IsTerminal(tr.Sym) {
					shifts++
				}
			}
			if reds > 1 || (reds == 1 && shifts > 0) {
				inad++
			}
		}
		t.Row(g.Name(), inad, fmt.Sprintf("%d/%d", ssr, srr),
			fmt.Sprintf("%d/%d", lsr, lrr), fmt.Sprintf("%d/%d", csr, crr),
			ssr == lsr && srr == lrr)
	}
	t.Note("LR(1) entry counts can exceed LALR's on inadequate grammars: state splitting replicates the same conflict")
	t.Note("adequacy is monotone LR(0) ≤ SLR ≤ LALR ≤ LR(1); SLR suffices for most practical grammars")
	return t.String()
}

func tableV(bool) string {
	t := report.New("", "grammar", "states", "full cells", "packed cells", "ratio", "default-reduce states")
	for _, a := range corpusAutomata() {
		tbl := lalrtable.Build(a, core.Compute(a).Sets())
		p := packed.Pack(tbl)
		if err := p.Verify(); err != nil {
			return fmt.Sprintf("pack verification failed for %s: %v", a.G.Name(), err)
		}
		st := p.Stats()
		nDef := 0
		for _, d := range p.DefaultReduce {
			if d >= 0 {
				nDef++
			}
		}
		t.Row(a.G.Name(), st.States, st.FullCells, st.PackedCells, st.Ratio, nDef)
	}
	t.Note("the 1979-era framing: LALR tables fit in memory because of exactly this encoding")
	return t.String()
}

func figScaling(quick bool) string {
	sizes := []int{5, 10, 20, 40, 80}
	lr1Cap := 40
	if quick {
		sizes = []int{5, 10, 20}
	}
	t := report.New("expr-levels(n): look-ahead cost vs grammar size",
		"n", "LR0 states", "nt-trans", "DP ns", "prop ns", "LR1-merge ns", "prop/DP")
	for _, n := range sizes {
		g := grammars.ExprLevels(n)
		an := grammar.Analyze(g)
		a := lr0.New(g, an)
		dDP := measure(func() { _ = core.Compute(a) })
		dProp := measure(func() { _, _ = prop.Compute(a) })
		lr1Cell := any("-")
		if n <= lr1Cap {
			d := measure(func() { _ = lr1.New(g, an).MergeLALR(a) })
			lr1Cell = d.Nanoseconds()
		}
		t.Row(n, len(a.States), len(a.NtTrans), dDP.Nanoseconds(), dProp.Nanoseconds(),
			lr1Cell, float64(dProp)/float64(dDP))
	}
	t.Note("DP grows near-linearly with the machine; propagation and canonical LR(1) grow faster")

	t2 := report.New("\nnullable-chain(n): long reads chains (ε-heavy grammars)",
		"n", "nt-trans", "reads edges", "DP ns", "prop ns", "prop/DP")
	nullSizes := []int{8, 16, 32, 64}
	if quick {
		nullSizes = []int{8, 16}
	}
	for _, n := range nullSizes {
		g := grammars.NullableChain(n)
		a := lr0.New(g, nil)
		dDP := measure(func() { _ = core.Compute(a) })
		dProp := measure(func() { _, _ = prop.Compute(a) })
		t2.Row(n, len(a.NtTrans), core.Compute(a).Stats().ReadsEdges,
			dDP.Nanoseconds(), dProp.Nanoseconds(), float64(dProp)/float64(dDP))
	}
	t2.Note("nullable chains stress the reads relation; DP's single traversal absorbs them")
	return t.String() + t2.String()
}

func figDigraph(quick bool) string {
	sizes := []int{50, 200, 800, 3200}
	if quick {
		sizes = []int{50, 200}
	}
	t := report.New("unit-chain(n): Digraph vs naive fixpoint on the includes relation",
		"family", "n", "nt-trans", "Digraph ns", "naive ns", "naive/Digraph")
	for _, n := range sizes {
		for _, fam := range []struct {
			name string
			g    *grammar.Grammar
		}{
			{"aligned", grammars.UnitChain(n)},
			{"anti-aligned", grammars.UnitChainReversed(n)},
		} {
			a := lr0.New(fam.g, nil)
			dFast := measure(func() { _ = core.Compute(a) })
			dNaive := measure(func() { _ = core.ComputeNaive(a) })
			t.Row(fam.name, n, len(a.NtTrans), dFast.Nanoseconds(), dNaive.Nanoseconds(),
				float64(dNaive)/float64(dFast))
		}
	}
	t.Note("naive iteration depends on sweep order: favourable chains converge in 2 rounds,")
	t.Note("adversarial ones need n rounds (quadratic).  Digraph is one union per edge either way —")
	t.Note("the paper's point: its cost is order-independent and linear")
	return t.String()
}

// keep report import referenced even if tables change shape during
// development.
var _ = sort.Ints

// benchSchema versions the -metrics-out layout (the BENCH_*.json
// trajectory format).  The per-run observability fragments inside it
// carry their own obs.SchemaVersion.
const benchSchema = "repro-bench/1"

// benchMetrics is the top-level -metrics-out document.
type benchMetrics struct {
	Schema   string           `json:"schema"`
	Mode     string           `json:"mode"` // "quick" or "full"
	Grammars []grammarMetrics `json:"grammars"`
}

// grammarMetrics captures one corpus grammar's pipeline run: machine
// sizes, the paper's relation/SCC statistics, per-method wall times,
// and the instrumented phase tree with its cost-model counters.
type grammarMetrics struct {
	Grammar string `json:"grammar"`
	// Fingerprint is the content address of (grammar text, method) —
	// the same repro.Fingerprint lalrd keys its cache on — so metrics
	// documents from different runs (including failed, limit-governed
	// ones) are joinable by grammar content rather than by name.
	Fingerprint string `json:"fingerprint"`
	// Error is set (and every other field beyond Grammar and
	// Fingerprint left zero) when the grammar's pipeline run was
	// aborted by -timeout/-max-states and -keep-going kept the batch
	// alive.
	Error         string           `json:"error,omitempty"`
	Terminals     int              `json:"terminals"`
	Nonterminals  int              `json:"nonterminals"`
	Productions   int              `json:"productions"`
	LR0States     int              `json:"lr0_states"`
	NtTransitions int              `json:"nt_transitions"`
	Relations     relationMetrics  `json:"relations"`
	Digraph       digraphMetrics   `json:"digraph"`
	TimingsNs     map[string]int64 `json:"timings_ns"`
	Phases        []obs.SpanExport `json:"phases"`
	Counters      map[string]int64 `json:"counters"`
}

type relationMetrics struct {
	DRElements    int `json:"dr_elements"`
	ReadsEdges    int `json:"reads_edges"`
	IncludesEdges int `json:"includes_edges"`
	LookbackEdges int `json:"lookback_edges"`
}

type digraphMetrics struct {
	ReadsSCCs      int  `json:"reads_sccs"`
	IncludesSCCs   int  `json:"includes_sccs"`
	LargestIncSCC  int  `json:"largest_includes_scc"`
	ReadsCyclic    bool `json:"reads_cyclic"`
	IncludesCyclic bool `json:"includes_cyclic"`
}

// collectMetrics runs the instrumented pipeline once per corpus grammar
// and measures the per-method wall times.  workers > 1 fans the grammars
// over a bounded pool; the document's grammar order stays the corpus
// order regardless (each task writes its own slot).
//
// The pipeline runs under the governance flags: with -keep-going an
// aborted grammar contributes a stub entry carrying its error and the
// rest of the corpus completes; without it the first abort fails the
// whole collection.
func collectMetrics(quick bool, workers int, gf *cliguard.Flags) (benchMetrics, error) {
	budget := 40 * time.Millisecond
	mode := "full"
	if quick {
		budget = 8 * time.Millisecond
		mode = "quick"
	}
	entries := grammars.All()
	doc := benchMetrics{Schema: benchSchema, Mode: mode, Grammars: make([]grammarMetrics, len(entries))}
	ctx, cancel := gf.Context()
	defer cancel()
	policy := driver.FailFast
	if gf.KeepGoing {
		policy = driver.Collect
	}
	err := driver.Run(ctx, len(entries), driver.Options{Workers: workers, Policy: policy}, func(ctx context.Context, gi int, _ *obs.Recorder) error {
		e := entries[gi]
		g := grammars.MustLoad(e.Name)
		// The document measures the DP pipeline, so the fingerprint is
		// keyed on the "dp" method — matching what a lalrd /v1/analyze
		// of the same source would compute.
		fp := cache.Fingerprint(e.Src, "dp")

		// One instrumented end-to-end run: LR(0) → DP → tables → packing.
		rec := obs.New()
		bud := guard.New(ctx, gf.Limits(), rec)
		bud.SetOwner(g.Name())
		sp := rec.Start("lr0-construction")
		a, err := lr0.NewBudgeted(g, nil, rec, bud)
		sp.End()
		if err != nil {
			doc.Grammars[gi] = grammarMetrics{Grammar: g.Name(), Fingerprint: fp, Error: err.Error()}
			return err
		}
		sp = rec.Start("lookahead-dp")
		dp, err := core.ComputeBudgeted(a, rec, bud)
		sp.End()
		if err != nil {
			doc.Grammars[gi] = grammarMetrics{Grammar: g.Name(), Fingerprint: fp, Error: err.Error()}
			return err
		}
		tbl, err := lalrtable.BuildBudgeted(a, dp.Sets(), rec, bud)
		if err != nil {
			doc.Grammars[gi] = grammarMetrics{Grammar: g.Name(), Fingerprint: fp, Error: err.Error()}
			return err
		}
		packed.PackObserved(tbl, rec)
		export := rec.ExportData()

		st := dp.Stats()
		gm := grammarMetrics{
			Grammar:       g.Name(),
			Fingerprint:   fp,
			Terminals:     g.NumTerminals(),
			Nonterminals:  g.NumNonterminals(),
			Productions:   len(g.Productions()),
			LR0States:     len(a.States),
			NtTransitions: len(a.NtTrans),
			Relations: relationMetrics{
				DRElements:    st.DRTotal,
				ReadsEdges:    st.ReadsEdges,
				IncludesEdges: st.IncludesEdges,
				LookbackEdges: st.LookbackEdges,
			},
			Digraph: digraphMetrics{
				ReadsSCCs:      st.ReadsSCCs,
				IncludesSCCs:   st.IncludesSCCs,
				LargestIncSCC:  st.LargestIncSCC,
				ReadsCyclic:    st.ReadsCyclic,
				IncludesCyclic: st.IncludesCyclic,
			},
			TimingsNs: map[string]int64{},
			Phases:    export.Phases,
			Counters:  export.Counters,
		}

		gm.TimingsNs["lr0"] = measureBudget(func() { _ = lr0.New(g, nil) }, budget).Nanoseconds()
		gm.TimingsNs["dp"] = measureBudget(func() { _ = core.Compute(a) }, budget).Nanoseconds()
		gm.TimingsNs["dp_lazy"] = measureBudget(func() { _ = core.ComputeLazy(a) }, budget).Nanoseconds()
		gm.TimingsNs["slr"] = measureBudget(func() {
			aa := *a
			aa.An = grammar.Analyze(g)
			_ = slr.Compute(&aa)
		}, budget).Nanoseconds()
		gm.TimingsNs["prop"] = measureBudget(func() { _, _ = prop.Compute(a) }, budget).Nanoseconds()

		// Isolated Digraph solve phases, serial vs a 4-way fan-out.  Each
		// iteration re-seeds a fresh arena from the already-built relations;
		// the seeding cost is identical on both sides, so the serial-vs-par4
		// delta isolates the solve itself.
		n := len(a.NtTrans)
		seed := func(src []bitset.Set) []bitset.Set {
			out := bitset.NewArena(len(src), g.NumTerminals()).Sets()
			for i := range src {
				src[i].CopyInto(&out[i])
			}
			return out
		}
		solve := func(adj [][]int32, src []bitset.Set, workers int) func() {
			return func() {
				f := seed(src)
				if _, err := digraph.SolveParallel(n, adjRel(adj), f, workers, nil, nil); err != nil {
					panic(err)
				}
			}
		}
		gm.TimingsNs["solve_reads"] = measureBudget(solve(dp.Reads, dp.DR, 1), budget).Nanoseconds()
		gm.TimingsNs["solve_includes"] = measureBudget(solve(dp.Includes, dp.Read, 1), budget).Nanoseconds()
		gm.TimingsNs["solve_reads_par4"] = measureBudget(solve(dp.Reads, dp.DR, 4), budget).Nanoseconds()
		gm.TimingsNs["solve_includes_par4"] = measureBudget(solve(dp.Includes, dp.Read, 4), budget).Nanoseconds()

		doc.Grammars[gi] = gm
		return nil
	})
	if err != nil && gf.KeepGoing {
		// Every failure is already recorded in its grammar's Error
		// field; the document itself is the keep-going report.
		fmt.Fprintf(os.Stderr, "lalrbench: continuing past failures: %v\n", err)
		err = nil
	}
	return doc, err
}

// emitMetrics writes the metrics document as indented JSON to path
// ('-' for stdout).
func emitMetrics(path string, quick bool, workers int, gf *cliguard.Flags) error {
	doc, err := collectMetrics(quick, workers, gf)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lalrbench: wrote %s (%d grammars)\n", path, len(collectMetricsNames()))
	return nil
}

// adjRel adapts CSR adjacency rows to the digraph.Succ callback form.
func adjRel(adj [][]int32) digraph.Succ {
	return func(x int, yield func(int)) {
		for _, y := range adj[x] {
			yield(int(y))
		}
	}
}

func collectMetricsNames() []string {
	var names []string
	for _, e := range grammars.All() {
		names = append(names, e.Name)
	}
	return names
}
