package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/grammars"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// serveLoadFleetSchema versions the multi-endpoint -serve-load
// -metrics-out layout.  Where repro-serveload/1 digests one node's
// cold/hot passes, this one digests a fleet replay: per-endpoint and
// aggregate latency percentiles plus availability.
const serveLoadFleetSchema = "repro-serveload/2"

// fleetPasses is how many times the corpus is replayed across the
// fleet.  The first pass is cold everywhere; later passes exercise the
// warm paths (memory hits, frozen loads, peer fills) because the
// round-robin rotation hands each grammar to a different node each
// time.
const fleetPasses = 3

// endpointLoadReport digests one endpoint's share of the fleet replay
// (or, for the aggregate row, all of it).
type endpointLoadReport struct {
	BaseURL      string            `json:"base_url,omitempty"`
	Requests     int               `json:"requests"`
	Errors       int               `json:"errors"`
	Availability float64           `json:"availability"`
	Latency      telemetry.Summary `json:"latency"`
}

// serveLoadFleetMetrics is the top-level repro-serveload/2 document.
type serveLoadFleetMetrics struct {
	Schema    string               `json:"schema"`
	Grammars  int                  `json:"grammars"`
	Passes    int                  `json:"passes"`
	Endpoints []endpointLoadReport `json:"endpoints"`
	Aggregate endpointLoadReport   `json:"aggregate"`
}

// endpointTally accumulates one endpoint's requests during the replay.
type endpointTally struct {
	base     string
	requests int
	errors   int
	lat      *telemetry.Histogram
}

func (e *endpointTally) report(withURL bool) endpointLoadReport {
	avail := 1.0
	if e.requests > 0 {
		avail = float64(e.requests-e.errors) / float64(e.requests)
	}
	r := endpointLoadReport{
		Requests:     e.requests,
		Errors:       e.errors,
		Availability: avail,
		Latency:      e.lat.Snapshot().Summary(),
	}
	if withURL {
		r.BaseURL = e.base
	}
	return r
}

// runServeLoadFleet replays the corpus fleetPasses times round-robin
// across several lalrd endpoints — the client side of a fleet behind a
// dumb balancer — and reports per-endpoint and aggregate p50/p99/p999
// latency plus availability.  Every successful body is checked
// byte-for-byte against the first answer for that grammar, whichever
// node produced it: a fleet that serves two different answers for one
// fingerprint has failed regardless of its latency.  A request error
// counts against that endpoint's availability; it does not abort the
// replay (measuring a degraded fleet is the point of the tool).
func runServeLoadFleet(out io.Writer, bases []string, metricsOut string) error {
	client := &http.Client{Timeout: 60 * time.Second}
	tallies := make([]*endpointTally, len(bases))
	healthy := 0
	for i, base := range bases {
		tallies[i] = &endpointTally{base: base, lat: telemetry.NewHistogram()}
		if err := checkHealth(client, base); err != nil {
			fmt.Fprintf(out, "lalrbench: endpoint %s is down at start: %v\n", base, err)
		} else {
			healthy++
		}
	}
	if healthy == 0 {
		return fmt.Errorf("no healthy endpoint among %s", strings.Join(bases, ", "))
	}

	entries := grammars.All()
	agg := &endpointTally{lat: telemetry.NewHistogram()}
	firstBody := make([][]byte, len(entries))
	for pass := 0; pass < fleetPasses; pass++ {
		for i, e := range entries {
			tally := tallies[(i+pass)%len(bases)]
			start := time.Now()
			body, _, _, err := postAnalyze(client, tally.base, e.Name, e.Src)
			d := time.Since(start)
			tally.requests++
			tally.lat.Observe(d)
			agg.requests++
			agg.lat.Observe(d)
			if err != nil {
				tally.errors++
				agg.errors++
				continue
			}
			switch {
			case firstBody[i] == nil:
				firstBody[i] = body
			case !bytes.Equal(firstBody[i], body):
				return fmt.Errorf("grammar %s: %s answered a different body than the first node — the fleet is not byte-deterministic",
					e.Name, tally.base)
			}
		}
	}

	doc := serveLoadFleetMetrics{
		Schema:    serveLoadFleetSchema,
		Grammars:  len(entries),
		Passes:    fleetPasses,
		Aggregate: agg.report(false),
	}
	t := report.New(fmt.Sprintf("serve-load across %d endpoints (%d corpus grammars x %d passes)",
		len(bases), len(entries), fleetPasses),
		"endpoint", "requests", "errors", "avail", "p50", "p99", "p999")
	row := func(name string, r endpointLoadReport) {
		t.Row(name, r.Requests, r.Errors,
			fmt.Sprintf("%.2f%%", 100*r.Availability),
			time.Duration(r.Latency.P50Ns).Round(time.Microsecond),
			time.Duration(r.Latency.P99Ns).Round(time.Microsecond),
			time.Duration(r.Latency.P999Ns).Round(time.Microsecond))
	}
	for _, e := range tallies {
		r := e.report(true)
		doc.Endpoints = append(doc.Endpoints, r)
		row(e.base, r)
	}
	row("aggregate", doc.Aggregate)
	if agg.errors == 0 {
		t.Note("all %d requests succeeded; every body byte-identical across nodes", agg.requests)
	} else {
		t.Note("%d/%d requests failed; surviving bodies byte-identical across nodes", agg.errors, agg.requests)
	}
	fmt.Fprint(out, t.String())

	if metricsOut != "" {
		if err := writeServeLoadFleetMetrics(metricsOut, doc); err != nil {
			return err
		}
	}
	return nil
}

// writeServeLoadFleetMetrics writes the fleet document as indented
// JSON to path ('-' for stdout).
func writeServeLoadFleetMetrics(path string, doc serveLoadFleetMetrics) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lalrbench: wrote %s (%d endpoints)\n", path, len(doc.Endpoints))
	return nil
}
