package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cliguard"
	"repro/internal/grammars"
)

// The timing-free experiment tables must render all corpus grammars and
// their structural columns.
func TestStructuralTables(t *testing.T) {
	out := tableI(true)
	for _, want := range []string{"pascal", "ada", "LR1 states", "state ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
	out = tableII(true)
	for _, want := range []string{"includes", "lookback", "inc cyclic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
	out = tableIV(true)
	for _, want := range []string{"SLR sr/rr", "LALR sr/rr", "LR1 sr/rr", "dangling-else"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q:\n%s", want, out)
		}
	}
	out = tableV(true)
	if !strings.Contains(out, "ratio") || strings.Contains(out, "verification failed") {
		t.Errorf("Table V malformed:\n%s", out)
	}
}

// The timing experiments run end-to-end in quick mode.  They are slow,
// so -short skips them.
func TestTimedExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps skipped in -short mode")
	}
	out := tableIII(true)
	if !strings.Contains(out, "prop/DP") || !strings.Contains(out, "corpus totals") {
		t.Errorf("Table III malformed:\n%s", out)
	}
	out = figScaling(true)
	if !strings.Contains(out, "expr-levels") {
		t.Errorf("Fig scaling malformed:\n%s", out)
	}
	out = figDigraph(true)
	if !strings.Contains(out, "anti-aligned") {
		t.Errorf("Fig digraph malformed:\n%s", out)
	}
}

func TestMeasureReturnsPositive(t *testing.T) {
	d := measure(func() {})
	if d < 0 {
		t.Errorf("measure returned %v", d)
	}
}

// The -metrics-out document must be valid, schema-stamped JSON with
// relation sizes, Digraph SCC statistics, per-phase timings and the
// cost-model counters for every corpus grammar.
func TestCollectMetrics(t *testing.T) {
	doc, err := collectMetrics(true, 1, &cliguard.Flags{})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != benchSchema || doc.Mode != "quick" {
		t.Errorf("schema/mode = %q/%q", doc.Schema, doc.Mode)
	}
	if len(doc.Grammars) < 10 {
		t.Fatalf("only %d grammars in metrics", len(doc.Grammars))
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back benchMetrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("metrics do not round-trip: %v", err)
	}
	for _, gm := range doc.Grammars {
		if gm.Fingerprint == "" {
			t.Errorf("%s: missing fingerprint", gm.Grammar)
		}
		if gm.LR0States == 0 || gm.NtTransitions == 0 {
			t.Errorf("%s: empty machine stats", gm.Grammar)
		}
		if gm.Digraph.IncludesSCCs == 0 {
			t.Errorf("%s: no SCC stats", gm.Grammar)
		}
		for _, k := range []string{"lr0", "dp", "slr", "prop"} {
			if gm.TimingsNs[k] <= 0 {
				t.Errorf("%s: missing timing %q", gm.Grammar, k)
			}
		}
		if len(gm.Phases) == 0 {
			t.Errorf("%s: no phase tree", gm.Grammar)
		}
		// The acceptance bar: at least 6 distinct counters, relation
		// edges, unions and SCC count among them.
		if len(gm.Counters) < 6 {
			t.Errorf("%s: only %d counters", gm.Grammar, len(gm.Counters))
		}
		for _, c := range []string{"bitset_unions", "sccs", "nt_transitions"} {
			if gm.Counters[c] == 0 {
				t.Errorf("%s: counter %q missing or zero", gm.Grammar, c)
			}
		}
		// relation_edges can legitimately be 0 only when the grammar has
		// no reads or includes edges at all.
		if gm.Counters["relation_edges"] == 0 &&
			gm.Relations.ReadsEdges+gm.Relations.IncludesEdges > 0 {
			t.Errorf("%s: relation_edges counter missing", gm.Grammar)
		}
	}
}

// -parallel must never change what the metrics document says, only how
// fast it is collected: same grammar order, same structural numbers and
// counters (timing fields are measured, so they are not compared).
func TestCollectMetricsParallelDeterministic(t *testing.T) {
	serial, err := collectMetrics(true, 1, &cliguard.Flags{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := collectMetrics(true, 4, &cliguard.Flags{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Grammars) != len(serial.Grammars) {
		t.Fatalf("grammar counts differ: %d vs %d", len(par.Grammars), len(serial.Grammars))
	}
	for i := range serial.Grammars {
		s, p := serial.Grammars[i], par.Grammars[i]
		if p.Grammar != s.Grammar {
			t.Errorf("slot %d: grammar %q, want %q (order must be corpus order)", i, p.Grammar, s.Grammar)
		}
		if p.LR0States != s.LR0States || p.NtTransitions != s.NtTransitions ||
			p.Relations != s.Relations || p.Digraph != s.Digraph {
			t.Errorf("%s: structural metrics differ between serial and parallel collection", s.Grammar)
		}
		for _, c := range []string{"bitset_unions", "sccs", "relation_edges"} {
			if p.Counters[c] != s.Counters[c] {
				t.Errorf("%s: counter %s = %d, want %d", s.Grammar, c, p.Counters[c], s.Counters[c])
			}
		}
	}
}

// Error stubs (limit-aborted grammars under -keep-going) must still
// carry the content fingerprint, so failed runs stay joinable with
// successful runs of the same grammars by content address.
func TestMetricsErrorStubsCarryFingerprint(t *testing.T) {
	doc, err := collectMetrics(true, 1, &cliguard.Flags{MaxStates: 2, KeepGoing: true})
	if err != nil {
		t.Fatal(err)
	}
	aborted := 0
	for i, gm := range doc.Grammars {
		if gm.Error == "" {
			continue
		}
		aborted++
		if gm.Fingerprint == "" {
			t.Errorf("%s: error stub has no fingerprint", gm.Grammar)
		}
		want := cache.Fingerprint(grammars.All()[i].Src, "dp")
		if gm.Fingerprint != want {
			t.Errorf("%s: stub fingerprint %s, want %s", gm.Grammar, gm.Fingerprint, want)
		}
	}
	if aborted == 0 {
		t.Fatal("MaxStates=2 aborted no grammars; the stub path went untested")
	}
}

func TestEmitMetricsWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := emitMetrics(path, true, 1, &cliguard.Flags{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchMetrics
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("emitted file is not valid JSON: %v", err)
	}
	if doc.Schema != benchSchema {
		t.Errorf("schema = %q", doc.Schema)
	}
}
