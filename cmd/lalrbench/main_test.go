package main

import (
	"strings"
	"testing"
)

// The timing-free experiment tables must render all corpus grammars and
// their structural columns.
func TestStructuralTables(t *testing.T) {
	out := tableI(true)
	for _, want := range []string{"pascal", "ada", "LR1 states", "state ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
	out = tableII(true)
	for _, want := range []string{"includes", "lookback", "inc cyclic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q:\n%s", want, out)
		}
	}
	out = tableIV(true)
	for _, want := range []string{"SLR sr/rr", "LALR sr/rr", "LR1 sr/rr", "dangling-else"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q:\n%s", want, out)
		}
	}
	out = tableV(true)
	if !strings.Contains(out, "ratio") || strings.Contains(out, "verification failed") {
		t.Errorf("Table V malformed:\n%s", out)
	}
}

// The timing experiments run end-to-end in quick mode.  They are slow,
// so -short skips them.
func TestTimedExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps skipped in -short mode")
	}
	out := tableIII(true)
	if !strings.Contains(out, "prop/DP") || !strings.Contains(out, "corpus totals") {
		t.Errorf("Table III malformed:\n%s", out)
	}
	out = figScaling(true)
	if !strings.Contains(out, "expr-levels") {
		t.Errorf("Fig scaling malformed:\n%s", out)
	}
	out = figDigraph(true)
	if !strings.Contains(out, "anti-aligned") {
		t.Errorf("Fig digraph malformed:\n%s", out)
	}
}

func TestMeasureReturnsPositive(t *testing.T) {
	d := measure(func() {})
	if d < 0 {
		t.Errorf("measure returned %v", d)
	}
}
