package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/grammars"
	"repro/internal/server"
)

// runFrozenSmoke drives the warm-restart story end to end: a first
// lalrd instance with a fresh -store-dir analyzes a grammar cold and
// freezes the result to disk; a second instance on the same store
// answers the same grammar with X-Repro-Cache: frozen, a byte-identical
// body, and a trace entry with zero analysis phases — proof the
// pipeline never ran.  It returns nil only when every step holds, so
// `lalrd -frozen-smoke` is a self-contained CI gate (make frozen-smoke).
func runFrozenSmoke(out io.Writer, cfg server.Config) error {
	dir, err := os.MkdirTemp("", "lalrd-frozen-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.StoreDir = dir

	g, err := grammars.Get("dangling-else")
	if err != nil {
		return err
	}
	req := server.AnalyzeRequest{Grammar: g.Src, Filename: "dangling-else.y"}

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(base string) (http.Header, []byte, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return nil, nil, err
		}
		resp, err := client.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
		}
		return resp.Header, b, nil
	}

	// boot starts an in-process lalrd and returns its base URL plus a
	// shutdown function that drains it.
	boot := func() (string, func() error, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		hs := &http.Server{Handler: server.New(cfg)}
		errc := make(chan error, 1)
		go func() { errc <- hs.Serve(ln) }()
		stop := func() error {
			ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
			defer cancel()
			if err := hs.Shutdown(ctx); err != nil {
				return err
			}
			if err := <-errc; err != http.ErrServerClosed {
				return fmt.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
			return nil
		}
		return "http://" + ln.Addr().String(), stop, nil
	}

	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(out, "frozen-smoke: %-32s ok\n", name)
		return nil
	}

	// --- First life: cold analysis populates the store. ---
	base, stop, err := boot()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "frozen-smoke: lalrd #1 on %s (store %s)\n", base, dir)

	var coldBody []byte
	if err := step("cold analyze is a miss", func() error {
		hdr, body, err := post(base)
		if err != nil {
			return err
		}
		if c := hdr.Get("X-Repro-Cache"); c != "miss" {
			return fmt.Errorf("X-Repro-Cache = %q, want miss", c)
		}
		coldBody = body
		return nil
	}); err != nil {
		stop()
		return err
	}

	if err := step("miss froze a table to disk", func() error {
		matches, err := filepath.Glob(filepath.Join(dir, "*.frz"))
		if err != nil {
			return err
		}
		if len(matches) != 1 {
			return fmt.Errorf("store holds %d .frz files, want 1", len(matches))
		}
		return nil
	}); err != nil {
		stop()
		return err
	}

	if err := step("shutdown #1", stop); err != nil {
		return err
	}

	// --- Second life: the restart must come up warm from the store. ---
	base, stop, err = boot()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "frozen-smoke: lalrd #2 on %s (same store)\n", base)

	var requestID string
	if err := step("restart serves frozen", func() error {
		hdr, body, err := post(base)
		if err != nil {
			return err
		}
		if c := hdr.Get("X-Repro-Cache"); c != "frozen" {
			return fmt.Errorf("X-Repro-Cache = %q, want frozen", c)
		}
		if !bytes.Equal(body, coldBody) {
			return fmt.Errorf("frozen body differs from computed body (%d vs %d bytes)", len(body), len(coldBody))
		}
		requestID = hdr.Get("X-Repro-Request-Id")
		if requestID == "" {
			return fmt.Errorf("missing X-Repro-Request-Id")
		}
		return nil
	}); err != nil {
		stop()
		return err
	}

	if err := step("frozen trace has zero phases", func() error {
		resp, err := client.Get(base + "/debugz/traces/" + requestID)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("trace status %d", resp.StatusCode)
		}
		var tr server.TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			return err
		}
		if len(tr.Trace.Entries) != 1 {
			return fmt.Errorf("trace has %d entries, want 1", len(tr.Trace.Entries))
		}
		e := tr.Trace.Entries[0]
		if e.Outcome != "frozen" {
			return fmt.Errorf("entry outcome = %q, want frozen", e.Outcome)
		}
		if len(e.Phases) != 0 {
			return fmt.Errorf("frozen entry recorded %d analysis phases, want 0", len(e.Phases))
		}
		return nil
	}); err != nil {
		stop()
		return err
	}

	if err := step("repeat is an in-memory hit", func() error {
		hdr, body, err := post(base)
		if err != nil {
			return err
		}
		if c := hdr.Get("X-Repro-Cache"); c != "hit" {
			return fmt.Errorf("X-Repro-Cache = %q, want hit", c)
		}
		if !bytes.Equal(body, coldBody) {
			return fmt.Errorf("hit body differs")
		}
		return nil
	}); err != nil {
		stop()
		return err
	}

	if err := step("metricz counts the frozen hit", func() error {
		resp, err := client.Get(base + "/metricz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var m server.MetriczResponse
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return err
		}
		if m.Counters["frozen_hits"] < 1 {
			return fmt.Errorf("frozen_hits = %d, want >= 1", m.Counters["frozen_hits"])
		}
		return nil
	}); err != nil {
		stop()
		return err
	}

	if err := step("shutdown #2", stop); err != nil {
		return err
	}

	fmt.Fprintln(out, "frozen-smoke: PASS")
	return nil
}
