// Command lalrd is the grammar-analysis server: a long-running daemon
// exposing the DeRemer–Pennello pipeline over HTTP (the repro-api/1
// protocol) with a content-addressed response cache and admission
// control.
//
// Usage:
//
//	lalrd [flags]
//	lalrd -smoke
//
// Flags:
//
//	-addr A         listen address (default 127.0.0.1:8077; :0 picks a port)
//	-port-file F    write the bound TCP port to F once listening
//	-cache-size S   response cache byte budget (e.g. 64MB; 0 disables caching)
//	-max-inflight N reject analysis requests beyond N in flight (0 = unlimited)
//	-timeout D      abort each request's analysis after duration D (0 = none)
//	-max-states N   abort requests past N LR(0)/LR(1) states (0 = none)
//	-log-format F   access-log encoding on stderr: text (default) or json
//	-store-dir D    frozen-table store for warm restarts (empty = disabled)
//	-peers URLS     comma-separated fleet member base URLs, self included
//	-self URL       this node's own base URL (required with -peers)
//	-ring-replicas N, -peer-timeout D, -peer-retries N, -hedge-after D,
//	-breaker-failures N, -breaker-cooldown D
//	                peer-layer tuning (see DESIGN.md § 14)
//	-smoke          run the self-contained end-to-end smoke check and exit
//	-telemetry-smoke run the telemetry end-to-end smoke check and exit
//	-frozen-smoke   run the frozen-store warm-restart smoke check and exit
//	-cluster-smoke  run the 3-node fleet smoke check (kill a node under
//	                load, expect zero client-visible errors) and exit
//
// Endpoints: POST /v1/analyze, POST /v1/lint, POST /v1/batch,
// GET /v1/peer/table/{fp} and PUT (fleet-internal frozen-table
// exchange), GET /healthz (liveness), GET /readyz (readiness: 503
// while starting or draining), GET /metricz (JSON, or Prometheus text
// with ?format=prom), GET /debugz/traces, GET /debugz/traces/{id}.
// See DESIGN.md § 10–11 and § 14.
//
// The server shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// 503 so balancers stop routing, the listener closes, in-flight
// requests drain (bounded by a grace period), then the peer layer
// closes and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliguard"
	"repro/internal/cluster"
	"repro/internal/frozen"
	"repro/internal/server"
)

// shutdownGrace bounds how long in-flight requests may drain after a
// shutdown signal before the server gives up on them.
const shutdownGrace = 10 * time.Second

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lalrd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("lalrd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8077", "listen address (host:port; :0 picks a free port)")
		portFile = fs.String("port-file", "", "write the bound TCP port to this file once listening")
		smoke    = fs.Bool("smoke", false, "run the end-to-end smoke check against an in-process server and exit")
		telSmoke = fs.Bool("telemetry-smoke", false, "run the telemetry end-to-end smoke check against an in-process server and exit")
		frzSmoke = fs.Bool("frozen-smoke", false, "run the frozen-store warm-restart smoke check and exit")
		clSmoke  = fs.Bool("cluster-smoke", false, "run the 3-node fleet smoke check (node kill under load) and exit")
	)
	sf := cliguard.RegisterServer(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	cfg := server.Config{
		CacheBytes:     int64(sf.CacheSize),
		MaxInflight:    sf.MaxInflight,
		Limits:         sf.Limits(),
		RequestTimeout: sf.Timeout,
		StoreDir:       sf.StoreDir,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "lalrd: "+format+"\n", a...)
		},
		AccessLog: sf.LogFormat.Logger(os.Stderr),
	}
	if *smoke {
		return runSmoke(out, cfg)
	}
	if *telSmoke {
		return runTelemetrySmoke(out, cfg)
	}
	if *frzSmoke {
		return runFrozenSmoke(out, cfg)
	}
	if *clSmoke {
		return runClusterSmoke(out, cfg)
	}
	if ccfg, ok, err := sf.ClusterConfig(); err != nil {
		return err
	} else if ok {
		ccfg.Transport = &cluster.HTTPTransport{}
		ccfg.Verify = verifyFrozen
		ccfg.Logf = cfg.Logf
		cl, err := cluster.New(ccfg)
		if err != nil {
			return err
		}
		cfg.Cluster = cl // the server owns it now; Close() releases it
	}
	return serve(out, cfg, *addr, *portFile)
}

// verifyFrozen is the peer-layer byte validator: fetched bytes must be
// a decodable FRZ1 record whose recorded fingerprint matches the one
// we asked for.  A failure counts against the serving peer.
func verifyFrozen(fp string, raw []byte) error {
	t, err := frozen.Decode(raw)
	if err != nil {
		return err
	}
	if t.Fingerprint != fp {
		return fmt.Errorf("peer bytes record fingerprint %q, want %q", t.Fingerprint, fp)
	}
	return nil
}

// serve listens on addr and runs the server until SIGINT/SIGTERM, then
// drains in-flight requests and exits.
func serve(out io.Writer, cfg server.Config, addr, portFile string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(portFile, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	cacheSize := cliguard.Size(cfg.CacheBytes)
	fmt.Fprintf(out, "lalrd: listening on http://%s (cache %s, max-inflight %d)\n",
		ln.Addr(), cacheSize.String(), cfg.MaxInflight)

	srv := server.New(cfg)
	defer srv.Close() // releases the peer layer (waits for inflight offers)
	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	srv.SetReady() // the listener is bound; /readyz may say so

	select {
	case err := <-errc:
		// Serve never returns nil; any return before a signal is a
		// listener failure.
		return err
	case <-ctx.Done():
	}
	stop()
	// Readiness flips first so balancers stop routing here, then the
	// listener closes and in-flight requests drain.
	srv.BeginDrain()
	fmt.Fprintln(out, "lalrd: shutting down, draining in-flight requests")
	dctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "lalrd: bye")
	return nil
}
