package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/grammars"
	"repro/internal/server"
)

// smokeNode is one fleet member of the cluster smoke: its listener,
// HTTP server, lalrd Server and peer layer.
type smokeNode struct {
	url string
	hs  *http.Server
	srv *server.Server
	cl  *cluster.Cluster
}

// runClusterSmoke drives the fleet story end to end on localhost: a
// 3-node lalrd fleet replays the grammar corpus under concurrent load,
// one node is killed mid-replay, and the run passes only if no client
// ever saw an error, warm requests filled from peers, and the dead
// peer's circuit breaker tripped on a survivor.  `lalrd -cluster-smoke`
// is the CI gate (make cluster-smoke).
func runClusterSmoke(out io.Writer, cfg server.Config) error {
	// Listeners first: the peer list needs every node's port before
	// any cluster can be built.
	const fleetSize = 3
	lns := make([]net.Listener, fleetSize)
	urls := make([]string, fleetSize)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}

	nodes := make([]*smokeNode, fleetSize)
	for i, ln := range lns {
		dir, err := os.MkdirTemp("", "lalrd-cluster-smoke-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cl, err := cluster.New(cluster.Config{
			Self:      urls[i],
			Peers:     urls,
			Transport: &cluster.HTTPTransport{},
			Verify:    verifyFrozen,
			// One retry with a short backoff keeps the dead-node phase
			// brisk; the breaker trips fast and stays open long enough
			// to be observed.
			Retries:         1,
			BackoffBase:     5 * time.Millisecond,
			BackoffCap:      50 * time.Millisecond,
			BreakerFailures: 2,
			BreakerCooldown: 30 * time.Second,
		})
		if err != nil {
			return err
		}
		ncfg := cfg
		ncfg.StoreDir = dir
		ncfg.Cluster = cl
		// Three nodes replaying the corpus twice produce hundreds of
		// access-log lines that drown the smoke's own verdict.
		ncfg.AccessLog = nil
		srv := server.New(ncfg)
		node := &smokeNode{url: urls[i], hs: &http.Server{Handler: srv}, srv: srv, cl: cl}
		go node.hs.Serve(ln)
		srv.SetReady()
		nodes[i] = node
	}
	fmt.Fprintf(out, "cluster-smoke: fleet %s\n", strings.Join(urls, " "))

	client := &http.Client{Timeout: 30 * time.Second}
	var (
		mu       sync.Mutex
		bodies   = map[string][]byte{} // grammar name -> first body seen
		errCount atomic.Int64
		peerHits atomic.Int64
	)
	// analyze posts one grammar to one node and checks the fleet
	// invariants: success, and the body byte-identical to every other
	// answer for the same grammar, whichever node computed it.
	analyze := func(node *smokeNode, name, src string) {
		req, _ := json.Marshal(server.AnalyzeRequest{Grammar: src, Filename: name + ".y"})
		resp, err := client.Post(node.url+"/v1/analyze", "application/json", bytes.NewReader(req))
		if err != nil {
			errCount.Add(1)
			fmt.Fprintf(out, "cluster-smoke: ERROR %s on %s: %v\n", name, node.url, err)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			errCount.Add(1)
			fmt.Fprintf(out, "cluster-smoke: ERROR %s on %s: status %d %v\n", name, node.url, resp.StatusCode, err)
			return
		}
		if resp.Header.Get("X-Repro-Cache") == "peer" {
			peerHits.Add(1)
		}
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := bodies[name]; !ok {
			bodies[name] = body
		} else if !bytes.Equal(prev, body) {
			errCount.Add(1)
			fmt.Fprintf(out, "cluster-smoke: ERROR %s on %s: body differs across nodes\n", name, node.url)
		}
	}
	// replay fans jobs over a small worker pool — concurrent load, the
	// condition the kill must not be visible under.
	type job struct {
		node      *smokeNode
		name, src string
	}
	replay := func(jobs []job) {
		ch := make(chan job)
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ch {
					analyze(j.node, j.name, j.src)
				}
			}()
		}
		for _, j := range jobs {
			ch <- j
		}
		close(ch)
		wg.Wait()
	}

	corpus := grammars.All()

	// --- Round 1: cold replay, striped across the whole fleet. ---
	var jobs []job
	for j, g := range corpus {
		jobs = append(jobs, job{nodes[j%fleetSize], g.Name, g.Src})
	}
	replay(jobs)
	if n := errCount.Load(); n > 0 {
		return fmt.Errorf("cold replay: %d client-visible errors", n)
	}
	fmt.Fprintf(out, "cluster-smoke: cold replay ok              (%d grammars, 0 errors)\n", len(corpus))

	// Offers are asynchronous; wait until every grammar's frozen table
	// has landed on its ring owner, so the warm round is deterministic.
	deadline := time.Now().Add(15 * time.Second)
	for _, g := range corpus {
		fp := repro.Fingerprint(g.Src, repro.Options{})
		owner := nodes[0].cl.Owner(fp)
		for {
			resp, err := client.Get(owner + cluster.PeerTablePath + fp)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("offer for %s never landed on its owner %s", g.Name, owner)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fmt.Fprintf(out, "cluster-smoke: offers converged on owners  ok\n")

	// --- Round 2: warm replay, each grammar on a node that has never
	// seen it — misses must fill from the ring owner, not recompute. ---
	jobs = jobs[:0]
	for j, g := range corpus {
		jobs = append(jobs, job{nodes[(j+1)%fleetSize], g.Name, g.Src})
	}
	replay(jobs)
	if n := errCount.Load(); n > 0 {
		return fmt.Errorf("warm replay: %d client-visible errors", n)
	}
	if peerHits.Load() == 0 {
		return fmt.Errorf("warm replay: no request was served from a peer (want X-Repro-Cache: peer)")
	}
	fmt.Fprintf(out, "cluster-smoke: warm replay ok              (%d peer fills)\n", peerHits.Load())

	// --- Kill one node mid-replay. ---
	victim := nodes[fleetSize-1]
	if err := victim.hs.Close(); err != nil {
		return fmt.Errorf("killing %s: %w", victim.url, err)
	}
	fmt.Fprintf(out, "cluster-smoke: killed %s\n", victim.url)
	survivors := nodes[:fleetSize-1]

	// Fresh grammar variants owned by the dead node, routed to the
	// survivors: every fetch must try the corpse, fail, and degrade to
	// local compute with the client none the wiser.
	jobs = jobs[:0]
	seed := corpus[0]
	found := 0
	for i := 0; found < 4 && i < 256; i++ {
		src := seed.Src + strings.Repeat("\n", i+1)
		fp := repro.Fingerprint(src, repro.Options{})
		if nodes[0].cl.Owner(fp) == victim.url {
			jobs = append(jobs, job{survivors[found%len(survivors)], fmt.Sprintf("%s-v%d", seed.Name, i), src})
			found++
		}
	}
	if found < 4 {
		return fmt.Errorf("could not find grammar variants owned by the dead node")
	}
	// The full corpus rides along on the survivors, so the degraded
	// fleet also re-proves byte-identical answers under load.
	for j, g := range corpus {
		jobs = append(jobs, job{survivors[j%len(survivors)], g.Name, g.Src})
	}
	replay(jobs)
	if n := errCount.Load(); n > 0 {
		return fmt.Errorf("degraded replay: %d client-visible errors", n)
	}
	fmt.Fprintf(out, "cluster-smoke: degraded replay ok          (%d requests, 0 errors)\n", len(jobs))

	// The dead peer's breaker must have tripped on some survivor.
	tripped := false
	for _, node := range survivors {
		st := node.cl.Stats()
		for _, ps := range st.Peers {
			if ps.Peer == victim.url && ps.Trips >= 1 {
				tripped = true
			}
		}
	}
	if !tripped {
		return fmt.Errorf("no survivor's breaker tripped for the dead peer %s", victim.url)
	}
	fmt.Fprintf(out, "cluster-smoke: breaker tripped for corpse  ok\n")

	// Graceful goodbye: drain flips /readyz before shutdown.
	s0 := survivors[0]
	s0.srv.BeginDrain()
	if resp, err := client.Get(s0.url + "/readyz"); err != nil {
		return err
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			return fmt.Errorf("/readyz after BeginDrain = %d, want 503", resp.StatusCode)
		}
	}
	for _, node := range nodes {
		node.hs.Close()
		node.srv.Close()
	}
	fmt.Fprintf(out, "cluster-smoke: drain flips readyz          ok\n")
	fmt.Fprintln(out, "cluster-smoke: PASS")
	return nil
}
