package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/grammars"
	"repro/internal/server"
)

// runSmoke boots an in-process lalrd on a random loopback port and
// drives the full serving story over real HTTP: cold request, cache
// hit with a byte-identical body, /metricz accounting, a resource-limit
// trip that answers 422 without taking the server down, and a clean
// drain-and-shutdown.  It returns nil only when every step holds, so
// `lalrd -smoke` is a self-contained CI gate (make serve-smoke).
func runSmoke(out io.Writer, cfg server.Config) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: server.New(cfg)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "serve-smoke: lalrd on %s\n", base)

	client := &http.Client{Timeout: 30 * time.Second}
	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			hs.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(out, "serve-smoke: %-28s ok\n", name)
		return nil
	}

	dangling, err := grammars.Get("dangling-else")
	if err != nil {
		return err
	}
	pascal, err := grammars.Get("pascal")
	if err != nil {
		return err
	}

	post := func(path string, req any) (int, http.Header, []byte, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, nil, nil, err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, b, err
	}

	if err := step("healthz", func() error {
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}); err != nil {
		return err
	}

	analyzeReq := server.AnalyzeRequest{Grammar: dangling.Src, Filename: "dangling-else.y"}
	var coldBody []byte
	if err := step("analyze cold (miss)", func() error {
		status, hdr, body, err := post("/v1/analyze", analyzeReq)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("status %d: %s", status, body)
		}
		if c := hdr.Get("X-Repro-Cache"); c != "miss" {
			return fmt.Errorf("X-Repro-Cache = %q, want miss", c)
		}
		coldBody = body
		return nil
	}); err != nil {
		return err
	}

	if err := step("analyze warm (hit, identical)", func() error {
		status, hdr, body, err := post("/v1/analyze", analyzeReq)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("status %d: %s", status, body)
		}
		if c := hdr.Get("X-Repro-Cache"); c != "hit" {
			return fmt.Errorf("X-Repro-Cache = %q, want hit", c)
		}
		if !bytes.Equal(body, coldBody) {
			return fmt.Errorf("cached body differs from computed body (%d vs %d bytes)", len(body), len(coldBody))
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("lint cold then warm", func() error {
		lintReq := server.LintRequest{Grammar: dangling.Src, Filename: "dangling-else.y"}
		status, _, first, err := post("/v1/lint", lintReq)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("cold status %d: %s", status, first)
		}
		status, hdr, second, err := post("/v1/lint", lintReq)
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("warm status %d", status)
		}
		if c := hdr.Get("X-Repro-Cache"); c != "hit" {
			return fmt.Errorf("X-Repro-Cache = %q, want hit", c)
		}
		if !bytes.Equal(first, second) {
			return fmt.Errorf("lint bodies differ across cache hit")
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("metricz counts the hits", func() error {
		resp, err := client.Get(base + "/metricz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var m server.MetriczResponse
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return err
		}
		if m.Schema != server.Schema {
			return fmt.Errorf("schema = %q, want %q", m.Schema, server.Schema)
		}
		if m.Counters["cache_hits"] < 1 {
			return fmt.Errorf("cache_hits = %d, want >= 1", m.Counters["cache_hits"])
		}
		if m.Counters["requests_analyze"] < 2 {
			return fmt.Errorf("requests_analyze = %d, want >= 2", m.Counters["requests_analyze"])
		}
		return nil
	}); err != nil {
		return err
	}

	// The over-limit step must use a grammar the cache has not seen:
	// limits are execution constraints, not part of the fingerprint, so
	// a cached grammar would be served from the cache (correctly) even
	// under a tiny budget.
	if err := step("over-limit grammar is 422", func() error {
		status, _, body, err := post("/v1/analyze", server.AnalyzeRequest{
			Grammar:  pascal.Src,
			Filename: "pascal.y",
			Limits:   &server.LimitsPayload{MaxStates: 2},
		})
		if err != nil {
			return err
		}
		if status != http.StatusUnprocessableEntity {
			return fmt.Errorf("status %d, want 422: %s", status, body)
		}
		var e server.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			return err
		}
		if e.Error.Kind != "limit" || e.Error.Resource == "" || e.Error.Limit != 2 {
			return fmt.Errorf("error payload %+v, want a populated limit error", e.Error)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("server survives the trip", func() error {
		status, hdr, body, err := post("/v1/analyze", server.AnalyzeRequest{
			Grammar:  pascal.Src,
			Filename: "pascal.y",
		})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("status %d, want 200 (failures must not be cached): %s", status, body)
		}
		if c := hdr.Get("X-Repro-Cache"); c != "miss" {
			return fmt.Errorf("X-Repro-Cache = %q, want miss (the 422 must not have poisoned the cache)", c)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("clean shutdown", func() error {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != http.ErrServerClosed {
			return fmt.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(out, "serve-smoke: PASS")
	return nil
}
