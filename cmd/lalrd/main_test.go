package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke runs the same end-to-end check as `make serve-smoke`:
// cold/warm analyze with byte-identical bodies, metricz accounting, a
// 422 limit trip the server survives, and a clean shutdown.
func TestServeSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke"}, &out); err != nil {
		t.Fatalf("lalrd -smoke: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "serve-smoke: PASS") {
		t.Errorf("smoke output missing PASS marker:\n%s", out.String())
	}
}

// TestSmokeHonorsCacheFlags exercises the flag plumbing: a tiny cache
// still passes the smoke (eviction is not corruption), and a bad size
// is a usage error.
func TestSmokeHonorsCacheFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-cache-size", "256KB", "-max-inflight", "8"}, &out); err != nil {
		t.Fatalf("lalrd -smoke -cache-size 256KB: %v\n%s", err, out.String())
	}
	if err := run([]string{"-cache-size", "banana"}, &out); err == nil {
		t.Error("bad -cache-size accepted")
	}
	if err := run([]string{"stray-arg"}, &out); err == nil {
		t.Error("stray positional argument accepted")
	}
}

// TestServeGracefulShutdown boots the real serve path on a random
// port, confirms it answers, then delivers SIGTERM and expects a clean
// drain-and-exit.
func TestServeGracefulShutdown(t *testing.T) {
	portFile := filepath.Join(t.TempDir(), "port")
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-port-file", portFile}, &out)
	}()

	var port string
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil {
			port = strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("port file never appeared; server output:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%s/healthz", port))
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down after SIGTERM")
	}
	if !strings.Contains(out.String(), "draining in-flight requests") {
		t.Errorf("shutdown did not report draining:\n%s", out.String())
	}
}
