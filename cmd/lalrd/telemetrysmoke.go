package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/cliguard"
	"repro/internal/grammars"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// runTelemetrySmoke boots an in-process lalrd and drives the telemetry
// story end to end: every response carries X-Repro-Request-Id, a
// just-issued request's span tree is retrievable from /debugz/traces
// by that ID, /metricz?format=prom emits exposition text that the
// strict validator accepts, the JSON /metricz carries hit-ratio and
// latency digests, /healthz identifies the build, and the access log
// is one well-formed JSON record per request.  It returns nil only
// when every step holds (make telemetry-smoke).
func runTelemetrySmoke(out io.Writer, cfg server.Config) error {
	// The smoke asserts on the access log, so it owns the sink: JSON
	// records into a buffer, whatever -log-format says.
	var access bytes.Buffer
	cfg.AccessLog = cliguard.LogFormat("json").Logger(&access)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: server.New(cfg)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "telemetry-smoke: lalrd on %s\n", base)

	client := &http.Client{Timeout: 30 * time.Second}
	step := func(name string, f func() error) error {
		if err := f(); err != nil {
			hs.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(out, "telemetry-smoke: %-28s ok\n", name)
		return nil
	}

	dangling, err := grammars.Get("dangling-else")
	if err != nil {
		return err
	}
	post := func(path string, req any) (*http.Response, []byte, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return nil, nil, err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp, b, err
	}

	analyzeReq := server.AnalyzeRequest{Grammar: dangling.Src, Filename: "dangling-else.y"}
	var missID, hitID string
	if err := step("request ids echoed", func() error {
		resp, body, err := post("/v1/analyze", analyzeReq)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		missID = resp.Header.Get("X-Repro-Request-Id")
		resp, _, err = post("/v1/analyze", analyzeReq)
		if err != nil {
			return err
		}
		hitID = resp.Header.Get("X-Repro-Request-Id")
		if !strings.HasPrefix(missID, "r-") || !strings.HasPrefix(hitID, "r-") || missID == hitID {
			return fmt.Errorf("request ids = %q, %q; want distinct r-... ids", missID, hitID)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("trace by id has span tree", func() error {
		resp, err := client.Get(base + "/debugz/traces/" + missID)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var tr server.TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			return err
		}
		if tr.Trace.ID != missID || tr.Trace.Outcome != "miss" {
			return fmt.Errorf("trace = id %q outcome %q, want %s/miss", tr.Trace.ID, tr.Trace.Outcome, missID)
		}
		if len(tr.Trace.Entries) != 1 || len(tr.Trace.Entries[0].Phases) == 0 {
			return fmt.Errorf("miss trace carries no span tree: %+v", tr.Trace.Entries)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("hit trace has no phases", func() error {
		resp, err := client.Get(base + "/debugz/traces/" + hitID)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var tr server.TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			return err
		}
		if tr.Trace.Outcome != "hit" {
			return fmt.Errorf("outcome = %q, want hit", tr.Trace.Outcome)
		}
		if len(tr.Trace.Entries) != 1 || len(tr.Trace.Entries[0].Phases) != 0 {
			return fmt.Errorf("a cache hit ran no pipeline, yet its trace has phases: %+v", tr.Trace.Entries)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("traces list both", func() error {
		resp, err := client.Get(base + "/debugz/traces")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var list server.TracesResponse
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			return err
		}
		seen := map[string]bool{}
		for _, t := range list.Recent {
			seen[t.ID] = true
		}
		if !seen[missID] || !seen[hitID] {
			return fmt.Errorf("recent traces missing %s or %s", missID, hitID)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("prom exposition validates", func() error {
		resp, err := client.Get(base + "/metricz?format=prom")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
			return fmt.Errorf("Content-Type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if err := telemetry.ValidateProm(body); err != nil {
			return fmt.Errorf("invalid exposition: %w", err)
		}
		for _, want := range []string{
			"# TYPE lalrd_endpoint_duration_seconds histogram",
			"# TYPE lalrd_phase_duration_seconds histogram",
			"lalrd_cache_hit_ratio",
		} {
			if !bytes.Contains(body, []byte(want)) {
				return fmt.Errorf("exposition missing %q", want)
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("metricz json digests", func() error {
		resp, err := client.Get(base + "/metricz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var m server.MetriczResponse
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			return err
		}
		if m.Cache.HitRatio <= 0 || m.Cache.HitRatio > 1 {
			return fmt.Errorf("hit_ratio = %v after a hit", m.Cache.HitRatio)
		}
		ep, ok := m.Latency["endpoint/analyze"]
		if !ok || ep.Count < 2 || ep.P50Ns <= 0 || ep.P999Ns < ep.P50Ns {
			return fmt.Errorf("latency[endpoint/analyze] = %+v", ep)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("healthz identifies build", func() error {
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var h server.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			return err
		}
		if h.Status != "ok" || h.UptimeMS < 0 || h.Build.GoVersion == "" {
			return fmt.Errorf("healthz = %+v", h)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("access log is json records", func() error {
		sc := bufio.NewScanner(bytes.NewReader(access.Bytes()))
		n, sawMiss := 0, false
		for sc.Scan() {
			var rec map[string]any
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				return fmt.Errorf("line %d is not JSON: %s", n+1, sc.Text())
			}
			if rec["request_id"] == missID && rec["outcome"] == "miss" {
				sawMiss = true
			}
			n++
		}
		if n < 2 {
			return fmt.Errorf("access log has %d records, want >= 2", n)
		}
		if !sawMiss {
			return fmt.Errorf("no record for the miss request %s", missID)
		}
		return nil
	}); err != nil {
		return err
	}

	if err := step("clean shutdown", func() error {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; err != http.ErrServerClosed {
			return fmt.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Fprintln(out, "telemetry-smoke: PASS")
	return nil
}
