package repro_test

import (
	"context"
	"errors"
	"testing"

	"repro"
	"repro/internal/grammars"
)

func batchCorpus(t *testing.T) []*repro.Grammar {
	t.Helper()
	var gs []*repro.Grammar
	for _, e := range grammars.All() {
		gs = append(gs, grammars.MustLoad(e.Name))
	}
	return gs
}

// TestAnalyzeAllEqualsSerial: batch analysis must be indistinguishable
// from serial Analyze calls — same look-ahead sets, same table
// adequacy, positionally matched to the input.
func TestAnalyzeAllEqualsSerial(t *testing.T) {
	gs := batchCorpus(t)
	results, err := repro.AnalyzeAll(gs, repro.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gs {
		want, err := repro.Analyze(g, repro.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if got == nil || got.Grammar != g {
			t.Fatalf("result %d does not belong to input %d", i, i)
		}
		if len(got.Lookahead) != len(want.Lookahead) {
			t.Fatalf("%s: state counts differ", g.Name())
		}
		for q := range want.Lookahead {
			for r := range want.Lookahead[q] {
				if !got.Lookahead[q][r].Equal(want.Lookahead[q][r]) {
					t.Errorf("%s: LA[%d][%d] = %v, want %v", g.Name(), q, r,
						got.Lookahead[q][r], want.Lookahead[q][r])
				}
			}
		}
		gsr, grr := got.Tables.Unresolved()
		wsr, wrr := want.Tables.Unresolved()
		if gsr != wsr || grr != wrr {
			t.Errorf("%s: conflicts %d/%d, want %d/%d", g.Name(), gsr, grr, wsr, wrr)
		}
	}
}

// TestAnalyzeAllMergedRecorder: the batch recorder's counters must equal
// a serial run's with the same single recorder.
func TestAnalyzeAllMergedRecorder(t *testing.T) {
	gs := batchCorpus(t)

	serial := repro.NewRecorder()
	for _, g := range gs {
		if _, err := repro.Analyze(g, repro.Options{Recorder: serial}); err != nil {
			t.Fatal(err)
		}
	}

	batch := repro.NewRecorder()
	if _, err := repro.AnalyzeAll(gs, repro.BatchOptions{
		Options: repro.Options{Recorder: batch},
		Workers: 3,
	}); err != nil {
		t.Fatal(err)
	}

	got, want := batch.Snapshot(), serial.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("counter sets differ:\ngot %v\nwant %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counter %s = %d, want %d", want[i].Name, got[i].Value, want[i].Value)
		}
	}
}

func TestAnalyzeAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gs := batchCorpus(t)
	results, err := repro.AnalyzeAll(gs, repro.BatchOptions{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("result %d present despite pre-cancelled context", i)
		}
	}
}

func TestAnalyzeAllPropagatesError(t *testing.T) {
	gs := []*repro.Grammar{grammars.MustLoad("json"), nil}
	results, err := repro.AnalyzeAll(gs, repro.BatchOptions{Workers: 2})
	if err == nil {
		t.Fatal("nil grammar did not fail the batch")
	}
	if results[0] == nil {
		t.Error("healthy grammar's result dropped because a sibling failed")
	}
}

// TestLintAllEqualsSerial: batch linting is positionally deterministic
// and identical to serial repro.Lint calls.
func TestLintAllEqualsSerial(t *testing.T) {
	gs := batchCorpus(t)
	batch, err := repro.LintAll(gs, repro.LintBatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gs {
		serial, err := repro.Lint(g, repro.LintOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Grammar != g.Name() {
			t.Fatalf("report %d is for %q, want %q", i, batch[i].Grammar, g.Name())
		}
		if len(batch[i].Diagnostics) != len(serial.Diagnostics) {
			t.Errorf("%s: batch %d diagnostics, serial %d", g.Name(),
				len(batch[i].Diagnostics), len(serial.Diagnostics))
			continue
		}
		for j, d := range batch[i].Diagnostics {
			s := serial.Diagnostics[j]
			if d.Code != s.Code || d.Message != s.Message || d.Severity != s.Severity {
				t.Errorf("%s diag %d: batch %+v != serial %+v", g.Name(), j, d, s)
			}
		}
	}
	if _, err := repro.LintAll(gs, repro.LintBatchOptions{
		Budgets: []*repro.LintBudget{{}},
	}); err == nil {
		t.Error("mismatched Budgets length should error")
	}
}

// TestLintPublicAPI: the repro.Lint surface carries codes, severities
// and the error-level verdicts through the aliases.
func TestLintPublicAPI(t *testing.T) {
	g, err := repro.LoadGrammar("cycle.y", "%%\ns : a ;\na : s | ;\n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := repro.Lint(g, repro.LintOptions{MinSeverity: repro.LintError})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasErrors() {
		t.Fatalf("derivation cycle should produce an error-severity finding: %+v", rep.Diagnostics)
	}
}
