package repro

import (
	"strings"
	"testing"

	"repro/internal/grammars"
)

const calcSrc = `
%token NUM
%left '+' '-'
%left '*' '/'
%%
e : e '+' e | e '-' e | e '*' e | e '/' e | '(' e ')' | NUM ;
`

func TestAnalyzeDefaultMethod(t *testing.T) {
	g, err := LoadGrammar("calc.y", calcSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodDeRemerPennello || res.DP == nil {
		t.Error("default method should be DeRemer–Pennello with DP relations populated")
	}
	if !res.Tables.Adequate() {
		t.Errorf("calc grammar should be adequate:\n%s", res.Tables.ConflictReport())
	}
	if res.Automaton == nil || len(res.Lookahead) != len(res.Automaton.States) {
		t.Error("lookahead shape mismatch")
	}
}

func TestAnalyzeAllMethodsAgreeOnAdequacy(t *testing.T) {
	for _, e := range grammars.All() {
		g := grammars.MustLoad(e.Name)
		for _, m := range []Method{MethodDeRemerPennello, MethodPropagation, MethodCanonicalMerge} {
			res, err := Analyze(g, Options{Method: m})
			if err != nil {
				t.Fatalf("%s/%v: %v", e.Name, m, err)
			}
			if res.Tables.Adequate() != e.LALRAdequate {
				t.Errorf("%s/%v: adequate = %v, want %v", e.Name, m, res.Tables.Adequate(), e.LALRAdequate)
			}
			if res.DP != nil && m != MethodDeRemerPennello {
				t.Errorf("%s/%v: DP populated for non-DP method", e.Name, m)
			}
		}
		res, err := Analyze(g, Options{Method: MethodSLR})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tables.Adequate() != e.SLRAdequate {
			t.Errorf("%s/slr: adequate = %v, want %v", e.Name, res.Tables.Adequate(), e.SLRAdequate)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Error("Analyze(nil) should fail")
	}
	g, _ := LoadGrammar("t.y", "%%\ns : 'a' ;\n")
	if _, err := Analyze(g, Options{Method: Method(99)}); err == nil {
		t.Error("unknown method should fail")
	}
}

func TestEndToEndParse(t *testing.T) {
	g, err := LoadGrammar("calc.y", calcSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewParser(res.Tables)
	num, plus := g.SymByName("NUM"), g.SymByName("'+'")
	tree, err := p.Parse(SymLexer(g, []Sym{num, plus, num}))
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || tree.Sym != g.Start() {
		t.Error("parse tree root should be the start symbol")
	}
	if _, err := p.Parse(SymLexer(g, []Sym{plus})); err == nil {
		t.Error("invalid input should fail")
	}
}

func TestMethodStringsAndParsing(t *testing.T) {
	for _, c := range []struct {
		name string
		m    Method
	}{
		{"dp", MethodDeRemerPennello},
		{"deremer-pennello", MethodDeRemerPennello},
		{"lalr", MethodDeRemerPennello},
		{"slr", MethodSLR},
		{"prop", MethodPropagation},
		{"yacc", MethodPropagation},
		{"lr1", MethodCanonicalMerge},
		{"canonical", MethodCanonicalMerge},
	} {
		m, err := ParseMethod(c.name)
		if err != nil || m != c.m {
			t.Errorf("ParseMethod(%q) = %v, %v", c.name, m, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("ParseMethod(bogus) should fail")
	}
	if MethodSLR.String() != "slr" || Method(42).String() == "" {
		t.Error("Method.String broken")
	}
	if !strings.Contains(Method(42).String(), "42") {
		t.Error("unknown method string should include the value")
	}
}

func TestNewGLRFacade(t *testing.T) {
	g, err := LoadGrammar("amb.y", "%token id\n%%\ne : e '+' e | id ;\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	glr := NewGLR(res)
	id, plus := g.SymByName("id"), g.SymByName("'+'")
	n, err := glr.Recognize([]Sym{id, plus, id, plus, id})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("derivations = %d, want 2", n)
	}
}

func TestCounterexamples(t *testing.T) {
	g, err := LoadGrammar("de.y", `
%token IF THEN ELSE other cond
%%
stmt : IF cond THEN stmt | IF cond THEN stmt ELSE stmt | other ;
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exs := res.Counterexamples()
	if len(exs) != 1 {
		t.Fatalf("examples = %d, want 1", len(exs))
	}
	if exs[0].Text != "IF cond THEN other • ELSE" {
		t.Errorf("Text = %q", exs[0].Text)
	}
	if got := len(exs[0].Input); got != 5 {
		t.Errorf("Input length = %d, want 5", got)
	}
	// Adequate grammars yield none.
	g2, _ := LoadGrammar("ok.y", "%token A\n%%\ns : A ;\n")
	res2, _ := Analyze(g2, Options{})
	if len(res2.Counterexamples()) != 0 {
		t.Error("adequate grammar produced counterexamples")
	}
}
