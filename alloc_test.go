package repro

// Allocation-regression gates for the arena-backed pipeline.  The
// benchmarks report allocs/op for the two hot constructions on the
// largest corpus grammar; the tests pin hard ceilings so a change that
// silently reverts to per-set or per-item allocation fails `go test`,
// not just a benchmark diff nobody reads.

import (
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/frozen"
	"repro/internal/grammar"
	"repro/internal/grammars"
	"repro/internal/lr0"
)

func csubAutomaton(tb testing.TB) (*grammar.Grammar, *grammar.Analysis, *lr0.Automaton) {
	tb.Helper()
	g := grammars.MustLoad("csub")
	an := grammar.Analyze(g)
	return g, an, lr0.New(g, an)
}

// BenchmarkAllocDPCompute isolates the full DeRemer–Pennello pass on the
// C subset grammar (the corpus's largest machine) purely for its
// allocs/op series; BenchmarkTableII_Relations is the timing view of the
// same work across the whole corpus.
func BenchmarkAllocDPCompute(b *testing.B) {
	_, _, a := csubAutomaton(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Compute(a)
	}
}

// BenchmarkAllocLR0Construction is the same gate for LR(0) construction.
func BenchmarkAllocLR0Construction(b *testing.B) {
	g, an, _ := csubAutomaton(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lr0.New(g, an)
	}
}

// TestComputeAllocBound: with every set family arena-backed and every
// relation CSR-packed, core.Compute allocates O(1) blocks per *family*,
// not per set.  A per-set regression costs at least one allocation per
// nonterminal transition for each of DR/Read/Follow — ≥3× the machine's
// nt-transition count — so the nt-transition count itself is a ceiling
// with a wide margin on both sides (currently ~8× above the real count,
// ~9× below the cheapest regression).
func TestComputeAllocBound(t *testing.T) {
	_, _, a := csubAutomaton(t)
	bound := float64(len(a.NtTrans))
	got := testing.AllocsPerRun(10, func() { _ = core.Compute(a) })
	t.Logf("core.Compute(csub): %.0f allocs (bound %.0f)", got, bound)
	if got > bound {
		t.Errorf("core.Compute allocates %.0f times on csub, bound %.0f — the arena path has regressed", got, bound)
	}
}

// TestComputeParallelAllocBound holds the parallel Digraph path to the
// same per-family discipline as the serial one.  The fan-out adds the
// condensation CSRs, the per-level goroutines and the forked budgets —
// all O(workers + SCC structure), none O(sets) — so a generous constant
// on top of the serial bound still fails long before any per-set
// allocation comes back.
func TestComputeParallelAllocBound(t *testing.T) {
	_, _, a := csubAutomaton(t)
	bound := float64(len(a.NtTrans)) + 512
	got := testing.AllocsPerRun(10, func() {
		if _, err := core.ComputeWith(a, core.Options{Workers: 4}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("core.ComputeWith(csub, 4 workers): %.0f allocs (bound %.0f)", got, bound)
	if got > bound {
		t.Errorf("parallel core.ComputeWith allocates %.0f times on csub, bound %.0f — the arena path has regressed", got, bound)
	}
}

// TestFrozenDecodeAllocBound pins the zero-copy claim of the frozen
// loader: decoding a table is header validation plus slice views into
// the input buffer, so it allocates O(1) blocks per table — the Table
// struct, the fingerprint string, and nothing per state or per cell.
func TestFrozenDecodeAllocBound(t *testing.T) {
	raw, err := os.ReadFile("internal/frozen/testdata/golden.frz")
	if err != nil {
		t.Fatal(err)
	}
	const bound = 4
	got := testing.AllocsPerRun(10, func() {
		if _, err := frozen.Decode(raw); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("frozen.Decode(golden): %.0f allocs (bound %d)", got, bound)
	if got > bound {
		t.Errorf("frozen.Decode allocates %.0f times, bound %d — the zero-copy load has regressed", got, bound)
	}
}

// TestLR0AllocBound pins LR(0) construction, whose irreducible
// allocations are the per-state kernels and transition slices.  The
// interned/scratch-buffer construction sits near 5.5 allocations per
// state on csub; the pre-interning construction was ~51.  The ceiling of
// 12 per state keeps double headroom for layout drift while still
// failing long before any map-per-state or sort-per-state comes back.
func TestLR0AllocBound(t *testing.T) {
	g, an, a := csubAutomaton(t)
	bound := float64(12 * len(a.States))
	got := testing.AllocsPerRun(10, func() { _ = lr0.New(g, an) })
	t.Logf("lr0.New(csub): %.0f allocs over %d states (bound %.0f)", got, len(a.States), bound)
	if got > bound {
		t.Errorf("lr0.New allocates %.0f times on csub, bound %.0f — the allocation-lean construction has regressed", got, bound)
	}
}
