package repro

import (
	"context"

	"repro/internal/driver"
	"repro/internal/obs"
)

// BatchOptions configure AnalyzeAll.
type BatchOptions struct {
	// Options apply to every grammar of the batch.  Options.Recorder,
	// when non-nil, receives the observability of all analyses merged:
	// counter totals come out identical to calling Analyze serially with
	// one recorder (counters sum), while each grammar's phase tree
	// arrives as its own root span, grouped by the worker that ran it.
	Options
	// Workers bounds how many grammars are analyzed concurrently.  Zero
	// or negative means one worker per CPU; 1 is a serial batch.
	Workers int
	// Context, when non-nil, cancels the batch between grammars: no new
	// analysis starts after it is done, in-flight analyses complete, and
	// AnalyzeAll reports the context's error.
	Context context.Context
}

// AnalyzeAll runs Analyze over every grammar on a bounded worker pool.
// results[i] is always gs[i]'s analysis, whatever order the workers
// finish in.  Analyses are independent, so the batch output is
// identical to len(gs) serial Analyze calls.
//
// On error or cancellation the partial results are still returned:
// entries that completed are kept, entries that never ran are nil, and
// the error identifies the first failed grammar by batch index.
func AnalyzeAll(gs []*Grammar, opts BatchOptions) ([]*Result, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(gs))
	err := driver.Run(ctx, len(gs), driver.Options{Workers: opts.Workers, Recorder: opts.Recorder},
		func(ctx context.Context, i int, rec *obs.Recorder) error {
			res, err := Analyze(gs[i], Options{Method: opts.Method, Recorder: rec})
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		})
	return results, err
}
