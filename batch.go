package repro

import (
	"context"
	"fmt"

	"repro/internal/driver"
	"repro/internal/obs"
)

// BatchPolicy selects how a batch reacts to a failing grammar.
type BatchPolicy = driver.Policy

// Batch error-handling policies.
const (
	// BatchCollect (the default) analyzes every grammar regardless of
	// failures and reports all errors joined in batch-index order.
	BatchCollect = driver.Collect
	// BatchFailFast cancels the batch at the first failure: in-flight
	// analyses abort at their next checkpoint, and the lowest-index
	// error is reported alone.
	BatchFailFast = driver.FailFast
)

// BatchOptions configure AnalyzeAll.
type BatchOptions struct {
	// Options apply to every grammar of the batch.  Options.Recorder,
	// when non-nil, receives the observability of all analyses merged:
	// counter totals come out identical to calling Analyze serially with
	// one recorder (counters sum), while each grammar's phase tree
	// arrives as its own root span, grouped by the worker that ran it.
	// Options.Limits apply to each grammar independently.
	// Options.Context is ignored; use the batch Context below.
	Options
	// Workers bounds how many grammars are analyzed concurrently.  Zero
	// or negative means one worker per CPU; 1 is a serial batch.
	Workers int
	// Context, when non-nil, cancels the batch: no new analysis starts
	// after it is done, in-flight analyses abort at their next
	// checkpoint, and AnalyzeAll reports the context's error.
	Context context.Context
	// Policy selects the error-handling discipline; the zero value is
	// BatchCollect.
	Policy BatchPolicy
}

// AnalyzeAll runs Analyze over every grammar on a bounded worker pool.
// results[i] is always gs[i]'s analysis, whatever order the workers
// finish in.  Analyses are independent, so the batch output is
// identical to len(gs) serial Analyze calls.
//
// On error or cancellation the partial results are still returned:
// entries that completed are kept, entries that failed or never ran are
// nil.  Under BatchCollect the error joins every failure in batch-index
// order, each identifying its grammar by index; under BatchFailFast the
// lowest-index failure is reported alone.  A panic while analyzing one
// grammar is contained as that grammar's *InternalError; the other
// results are unaffected.
func AnalyzeAll(gs []*Grammar, opts BatchOptions) ([]*Result, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result, len(gs))
	err := driver.Run(ctx, len(gs), driver.Options{Workers: opts.Workers, Recorder: opts.Recorder, Policy: opts.Policy},
		func(ctx context.Context, i int, rec *obs.Recorder) error {
			res, err := Analyze(gs[i], Options{
				Method:   opts.Method,
				Recorder: rec,
				Context:  ctx,
				Limits:   opts.Limits,
			})
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		})
	return results, err
}

// LintBatchOptions configure LintAll.
type LintBatchOptions struct {
	// Lint applies to every grammar of the batch.  Lint.Recorder is
	// ignored; use Recorder below, which merges all workers' spans and
	// counters deterministically.
	Lint LintOptions
	// Budgets, when non-nil, supplies a per-grammar expected-conflict
	// budget (parallel to the grammar slice), overriding Lint.Budget.
	Budgets []*LintBudget
	// Workers bounds how many grammars are linted concurrently.  Zero or
	// negative means one worker per CPU; 1 is a serial batch.
	Workers int
	// Context, when non-nil, cancels the batch: no new lint starts after
	// it is done and in-flight fact computation aborts at its next
	// checkpoint.  Lint.Context is ignored in a batch.
	Context context.Context
	// Recorder, when non-nil, receives the merged observability of all
	// lint runs.
	Recorder *Recorder
	// Policy selects the error-handling discipline; the zero value is
	// BatchCollect.
	Policy BatchPolicy
}

// LintAll runs Lint over every grammar on a bounded worker pool.
// reports[i] is always gs[i]'s report, whatever order the workers
// finish in — rendering the reports in slice order therefore yields
// byte-identical output for any worker count.
//
// On error or cancellation the partial reports are still returned:
// entries that completed are kept, entries that never ran are nil, and
// the error identifies the first failed grammar by batch index.
func LintAll(gs []*Grammar, opts LintBatchOptions) ([]*LintReport, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Budgets != nil && len(opts.Budgets) != len(gs) {
		return nil, fmt.Errorf("repro: LintAll: %d budgets for %d grammars", len(opts.Budgets), len(gs))
	}
	reports := make([]*LintReport, len(gs))
	err := driver.Run(ctx, len(gs), driver.Options{Workers: opts.Workers, Recorder: opts.Recorder, Policy: opts.Policy},
		func(ctx context.Context, i int, rec *obs.Recorder) error {
			lo := opts.Lint
			lo.Recorder = rec
			lo.Context = ctx
			if opts.Budgets != nil {
				lo.Budget = opts.Budgets[i]
			}
			rep, err := Lint(gs[i], lo)
			if err != nil {
				return err
			}
			reports[i] = rep
			return nil
		})
	return reports, err
}
