package repro_test

import (
	"errors"
	"testing"

	"repro"
	"repro/internal/grammars"
)

// FuzzAnalyze throws arbitrary grammar sources at the whole public
// pipeline under tight resource limits.  Whatever the input, Analyze
// must return a result or a typed error: a panic escaping the fault
// boundary, an *InternalError on a grammar the loader accepted, or a
// runaway analysis (the limits bound it) are all bugs.  The corpus
// grammars seed the fuzzer so mutation starts from realistic inputs,
// and the structured mutation engine widens the seed set with variants
// that still parse — near-miss grammars the byte-level mutator would
// take a long time to stumble into.
func FuzzAnalyze(f *testing.F) {
	for _, e := range grammars.All() {
		f.Add(e.Src)
		for _, m := range grammars.Mutations(e.Src, 1, 4) {
			f.Add(m)
		}
	}
	f.Add("%token A\n%%\ns : A ;\n")
	f.Add("%%\ns : s s | ;\n")
	limits := repro.Limits{
		MaxStates:        500,
		MaxLR1States:     1000,
		MaxTableEntries:  1 << 18,
		MaxRelationEdges: 1 << 18,
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := repro.LoadGrammar("fuzz.y", src)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		for _, m := range []repro.Method{
			repro.MethodDeRemerPennello,
			repro.MethodSLR,
			repro.MethodPropagation,
			repro.MethodCanonicalMerge,
		} {
			res, err := repro.Analyze(g, repro.Options{Method: m, Limits: limits})
			if err != nil {
				if res != nil {
					t.Errorf("method %v: error %v alongside non-nil result", m, err)
				}
				var ie *repro.InternalError
				if errors.As(err, &ie) {
					t.Errorf("method %v: internal panic on accepted grammar:\n%v\n%s",
						m, err, ie.Stack)
				}
				continue
			}
			if res == nil || res.Tables == nil {
				t.Errorf("method %v: nil result without error", m)
			}
		}
	})
}
